//! Multivariate polynomial algebra for the verifiable-RL framework.
//!
//! The synthesis and verification pipeline of the paper manipulates three
//! kinds of polynomial objects:
//!
//! * the environment dynamics `ṡ = f(s, a)` of each benchmark, which are
//!   polynomial vector fields over state and action variables;
//! * the deterministic policy programs drawn from the sketch grammar of
//!   Fig. 5, whose expressions are polynomials over state variables; and
//! * the inductive-invariant sketches `E[c](X) ≤ 0` of Eq. (7), polynomials
//!   whose monomial basis is bounded by a user-chosen degree.
//!
//! This crate provides exactly that machinery: sparse multivariate
//! [`Polynomial`]s with arithmetic, composition/substitution, differentiation,
//! degree-bounded [`monomial_basis`] generation, and sound [`Interval`]
//! evaluation used by the branch-and-bound verifier.
//!
//! For the evaluation-heavy consumers (branch-and-bound, certificate
//! checking, the deployed shield's serving path) the sparse form can be
//! lowered once into a flat [`CompiledPolynomial`] / [`CompiledPolySet`],
//! whose kernels are bit-for-bit compatible with the reference evaluators
//! but allocation-free in steady state and several times faster.  The
//! compiled form is an immutable snapshot of the source polynomial: any
//! operation that produces a new [`Polynomial`] requires recompiling before
//! the result can be evaluated through the fast path.
//!
//! # Batched evaluation
//!
//! When many independent states must be evaluated against the *same*
//! compiled polynomial — the deployed shield's `decide_batch`, barrier
//! membership sweeps, guard cascades — the lane-batched kernels amortize
//! the per-variable power-table fill across a [`BatchPoints`]
//! structure-of-arrays batch, sweeping [`LANE_WIDTH`] states at a time
//! through fixed-width inner loops the compiler can vectorize.  Every lane
//! is **bit-for-bit** the scalar result (debug builds assert this per
//! lane), so batching never changes a decision.  The same lane discipline
//! extends to interval arithmetic: a [`BatchBoxes`] batch of axis-aligned
//! boxes sweeps through `evaluate_interval_batch`, which is what lets
//! branch-and-bound expand its frontier [`LANE_WIDTH`] boxes per
//! power-table fill without changing a single proof outcome:
//!
//! ```
//! use vrl_poly::{BatchPoints, Polynomial};
//!
//! // E(x, y) = x² + y² − 1, evaluated at three states in one sweep.
//! let x = Polynomial::variable(0, 2);
//! let y = Polynomial::variable(1, 2);
//! let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, 2);
//! let compiled = e.compile();
//!
//! let states = [vec![0.0, 0.0], vec![0.5, 0.5], vec![2.0, 0.0]];
//! let batch = BatchPoints::from_states(2, &states);
//! let mut values = Vec::new();
//! compiled.evaluate_batch(&batch, &mut values);
//! for (state, &value) in states.iter().zip(values.iter()) {
//!     assert_eq!(value.to_bits(), e.eval(state).to_bits()); // bit-exact
//! }
//! assert_eq!(values.iter().filter(|&&v| v <= 0.0).count(), 2);
//! ```
//!
//! # Examples
//!
//! ```
//! use vrl_poly::Polynomial;
//!
//! // p(x, y) = x^2 + 2xy
//! let x = Polynomial::variable(0, 2);
//! let y = Polynomial::variable(1, 2);
//! let p = &(&x * &x) + &(&(&x * &y) * 2.0);
//! assert_eq!(p.eval(&[1.0, 3.0]), 7.0);
//! assert_eq!(p.degree(), 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod basis;
mod batch;
mod compiled;
mod interval;
mod polynomial;
mod portable;

pub use basis::{basis_size, monomial_basis};
pub use batch::{BatchBoxes, BatchPoints};
pub use compiled::{CompiledPolySet, CompiledPolynomial, PolyScratch, LANE_WIDTH};
pub use interval::Interval;
pub use polynomial::Polynomial;
pub use portable::PortablePolynomial;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_compiles() {
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let p = &(&x * &x) + &(&(&x * &y) * 2.0);
        assert_eq!(p.eval(&[1.0, 3.0]), 7.0);
        assert_eq!(p.degree(), 2);
        assert_eq!(basis_size(2, 2), 6);
    }
}
