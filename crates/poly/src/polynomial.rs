//! Sparse multivariate polynomials over `f64` coefficients.

use crate::Interval;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Coefficients smaller than this (in absolute value) are dropped when terms
/// are normalized, keeping the representation sparse and printable.
const COEFF_EPSILON: f64 = 1e-14;

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// Terms are stored as a map from exponent vectors (one exponent per
/// variable) to coefficients.  All terms of a polynomial share the same
/// number of variables, fixed at construction.
///
/// # Examples
///
/// ```
/// use vrl_poly::Polynomial;
///
/// // p(x0, x1) = 3 x0^2 x1 - 1
/// let p = Polynomial::from_terms(2, vec![(vec![2, 1], 3.0), (vec![0, 0], -1.0)]);
/// assert_eq!(p.eval(&[2.0, 1.0]), 11.0);
/// assert_eq!(p.degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    nvars: usize,
    terms: BTreeMap<Vec<u32>, f64>,
}

impl Polynomial {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        Polynomial {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `value` over `nvars` variables.
    pub fn constant(value: f64, nvars: usize) -> Self {
        let mut p = Polynomial::zero(nvars);
        if value.abs() > COEFF_EPSILON {
            p.terms.insert(vec![0; nvars], value);
        }
        p
    }

    /// The polynomial consisting of the single variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= nvars`.
    pub fn variable(index: usize, nvars: usize) -> Self {
        assert!(
            index < nvars,
            "variable index {index} out of range for {nvars} variables"
        );
        let mut exps = vec![0; nvars];
        exps[index] = 1;
        let mut p = Polynomial::zero(nvars);
        p.terms.insert(exps, 1.0);
        p
    }

    /// Builds a polynomial from `(exponents, coefficient)` pairs.
    ///
    /// Duplicate exponent vectors are summed; negligible coefficients are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if any exponent vector has length different from `nvars`.
    pub fn from_terms(nvars: usize, terms: impl IntoIterator<Item = (Vec<u32>, f64)>) -> Self {
        let mut p = Polynomial::zero(nvars);
        for (exps, coeff) in terms {
            assert_eq!(
                exps.len(),
                nvars,
                "exponent vector length must equal the number of variables"
            );
            p.add_term(exps, coeff);
        }
        p
    }

    /// A linear (affine) polynomial `Σ coeffs[i]·x_i + constant`.
    pub fn linear(coeffs: &[f64], constant: f64) -> Self {
        let nvars = coeffs.len();
        let mut p = Polynomial::constant(constant, nvars);
        for (i, &c) in coeffs.iter().enumerate() {
            let mut exps = vec![0; nvars];
            exps[i] = 1;
            p.add_term(exps, c);
        }
        p
    }

    /// Builds `Σ coeffs[i]·basis[i]` where `basis` is a list of exponent
    /// vectors (typically produced by [`crate::monomial_basis`]).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != basis.len()` or an exponent vector has the
    /// wrong length.
    pub fn from_basis(nvars: usize, basis: &[Vec<u32>], coeffs: &[f64]) -> Self {
        assert_eq!(
            basis.len(),
            coeffs.len(),
            "basis and coefficient vectors must have the same length"
        );
        Polynomial::from_terms(nvars, basis.iter().cloned().zip(coeffs.iter().cloned()))
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of (non-negligible) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns true when the polynomial has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|exps| exps.iter().sum())
            .max()
            .unwrap_or(0)
    }

    /// Iterates over `(exponents, coefficient)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&Vec<u32>, f64)> + '_ {
        self.terms.iter().map(|(e, &c)| (e, c))
    }

    /// Coefficient of the given exponent vector (zero if absent).
    pub fn coefficient(&self, exponents: &[u32]) -> f64 {
        self.terms.get(exponents).copied().unwrap_or(0.0)
    }

    /// Coefficient of the constant term.
    pub fn constant_term(&self) -> f64 {
        self.coefficient(&vec![0; self.nvars])
    }

    /// Maximum absolute coefficient (zero for the zero polynomial).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.terms.values().fold(0.0, |m, c| m.max(c.abs()))
    }

    fn add_term(&mut self, exps: Vec<u32>, coeff: f64) {
        if coeff.abs() <= COEFF_EPSILON {
            return;
        }
        let entry = self.terms.entry(exps).or_insert(0.0);
        *entry += coeff;
        if entry.abs() <= COEFF_EPSILON {
            let key: Vec<u32> = self
                .terms
                .iter()
                .find(|(_, c)| c.abs() <= COEFF_EPSILON)
                .map(|(k, _)| k.clone())
                .expect("entry just inserted must exist");
            self.terms.remove(&key);
        }
    }

    /// Evaluates the polynomial at a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(
            point.len(),
            self.nvars,
            "evaluation point has wrong dimension"
        );
        let mut total = 0.0;
        for (exps, coeff) in &self.terms {
            let mut term = *coeff;
            for (x, &e) in point.iter().zip(exps.iter()) {
                if e > 0 {
                    term *= x.powi(e as i32);
                }
            }
            total += term;
        }
        total
    }

    /// Evaluates the polynomial over a box given as per-variable intervals,
    /// returning a conservative enclosure of its range.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    pub fn eval_interval(&self, domain: &[Interval]) -> Interval {
        assert_eq!(
            domain.len(),
            self.nvars,
            "interval domain has wrong dimension"
        );
        let mut total = Interval::zero();
        for (exps, coeff) in &self.terms {
            let mut term = Interval::point(*coeff);
            for (iv, &e) in domain.iter().zip(exps.iter()) {
                if e > 0 {
                    term = term * iv.pow(e);
                }
            }
            total = total + term;
        }
        total
    }

    /// Returns `self` scaled by `k`.
    pub fn scaled(&self, k: f64) -> Polynomial {
        let mut p = Polynomial::zero(self.nvars);
        for (exps, coeff) in &self.terms {
            p.add_term(exps.clone(), coeff * k);
        }
        p
    }

    /// Partial derivative with respect to variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.nvars()`.
    pub fn partial_derivative(&self, index: usize) -> Polynomial {
        assert!(index < self.nvars, "derivative variable index out of range");
        let mut p = Polynomial::zero(self.nvars);
        for (exps, coeff) in &self.terms {
            let e = exps[index];
            if e == 0 {
                continue;
            }
            let mut new_exps = exps.clone();
            new_exps[index] = e - 1;
            p.add_term(new_exps, coeff * e as f64);
        }
        p
    }

    /// Gradient: the vector of partial derivatives.
    pub fn gradient(&self) -> Vec<Polynomial> {
        (0..self.nvars)
            .map(|i| self.partial_derivative(i))
            .collect()
    }

    /// Substitutes each variable `x_i` by `assignments[i]`, producing a
    /// polynomial over the variables of the assignment polynomials.
    ///
    /// This is the operation the verifier uses to form the closed-loop
    /// successor polynomial `E(s + Δt·f(s, P(s)))` from the invariant `E`,
    /// the dynamics `f`, and a synthesized program `P`.
    ///
    /// # Panics
    ///
    /// Panics if `assignments.len() != self.nvars()` or the assignment
    /// polynomials do not all share the same variable count.
    pub fn substitute(&self, assignments: &[Polynomial]) -> Polynomial {
        assert_eq!(
            assignments.len(),
            self.nvars,
            "one assignment polynomial per variable is required"
        );
        let target_nvars = assignments.first().map_or(0, Polynomial::nvars);
        assert!(
            assignments.iter().all(|p| p.nvars() == target_nvars),
            "assignment polynomials must share the same variable count"
        );
        let mut result = Polynomial::zero(target_nvars);
        for (exps, coeff) in &self.terms {
            let mut term = Polynomial::constant(*coeff, target_nvars);
            for (assignment, &e) in assignments.iter().zip(exps.iter()) {
                for _ in 0..e {
                    term = &term * assignment;
                }
            }
            result = &result + &term;
        }
        result
    }

    /// Raises the polynomial to a non-negative integer power.
    pub fn pow(&self, n: u32) -> Polynomial {
        let mut result = Polynomial::constant(1.0, self.nvars);
        for _ in 0..n {
            result = &result * self;
        }
        result
    }

    /// Removes terms with absolute coefficient below `threshold`.
    pub fn pruned(&self, threshold: f64) -> Polynomial {
        let mut p = Polynomial::zero(self.nvars);
        for (exps, coeff) in &self.terms {
            if coeff.abs() >= threshold {
                p.add_term(exps.clone(), *coeff);
            }
        }
        p
    }

    /// Embeds the polynomial into a larger variable space: variable `i`
    /// becomes variable `offset + i` among `new_nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the embedded variables would not fit.
    pub fn embedded(&self, new_nvars: usize, offset: usize) -> Polynomial {
        assert!(
            offset + self.nvars <= new_nvars,
            "embedding exceeds the target variable count"
        );
        let mut p = Polynomial::zero(new_nvars);
        for (exps, coeff) in &self.terms {
            let mut new_exps = vec![0; new_nvars];
            new_exps[offset..offset + self.nvars].copy_from_slice(exps);
            p.add_term(new_exps, *coeff);
        }
        p
    }

    /// Formats the polynomial using the provided variable names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.nvars()`.
    pub fn to_string_with_names(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.nvars, "one name per variable is required");
        if self.terms.is_empty() {
            return "0".to_string();
        }
        // Print highest-degree terms first for readability (paper style).
        let mut entries: Vec<(&Vec<u32>, f64)> = self.terms.iter().map(|(e, &c)| (e, c)).collect();
        entries.sort_by(|a, b| {
            let da: u32 = a.0.iter().sum();
            let db: u32 = b.0.iter().sum();
            db.cmp(&da).then_with(|| b.0.cmp(a.0))
        });
        let mut out = String::new();
        for (i, (exps, coeff)) in entries.iter().enumerate() {
            let mag = coeff.abs();
            if i == 0 {
                if *coeff < 0.0 {
                    out.push('-');
                }
            } else if *coeff < 0.0 {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let is_constant = exps.iter().all(|&e| e == 0);
            let print_mag = is_constant || (mag - 1.0).abs() > 1e-12;
            if print_mag {
                out.push_str(&format_coefficient(mag));
            }
            let mut first_var = true;
            for (name, &e) in names.iter().zip(exps.iter()) {
                if e == 0 {
                    continue;
                }
                if !first_var || print_mag {
                    out.push('·');
                }
                first_var = false;
                out.push_str(name);
                if e > 1 {
                    out.push('^');
                    out.push_str(&e.to_string());
                }
            }
            let _ = first_var;
        }
        out
    }
}

fn format_coefficient(c: f64) -> String {
    if (c - c.round()).abs() < 1e-9 && c.abs() < 1e9 {
        format!("{}", c.round() as i64)
    } else {
        format!("{c:.4}")
    }
}

impl Add<&Polynomial> for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "polynomial variable counts differ");
        let mut p = self.clone();
        for (exps, coeff) in &rhs.terms {
            p.add_term(exps.clone(), *coeff);
        }
        p
    }
}

impl Sub<&Polynomial> for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "polynomial variable counts differ");
        let mut p = self.clone();
        for (exps, coeff) in &rhs.terms {
            p.add_term(exps.clone(), -coeff);
        }
        p
    }
}

impl Mul<&Polynomial> for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "polynomial variable counts differ");
        let mut p = Polynomial::zero(self.nvars);
        for (ea, ca) in &self.terms {
            for (eb, cb) in &rhs.terms {
                let exps: Vec<u32> = ea.iter().zip(eb.iter()).map(|(a, b)| a + b).collect();
                p.add_term(exps, ca * cb);
            }
        }
        p
    }
}

impl Mul<f64> for &Polynomial {
    type Output = Polynomial;
    fn mul(self, k: f64) -> Polynomial {
        self.scaled(k)
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.nvars).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(f, "{}", self.to_string_with_names(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial_basis;
    use proptest::prelude::*;

    fn x() -> Polynomial {
        Polynomial::variable(0, 2)
    }
    fn y() -> Polynomial {
        Polynomial::variable(1, 2)
    }

    #[test]
    fn constructors_and_accessors() {
        let p = Polynomial::from_terms(2, vec![(vec![2, 1], 3.0), (vec![0, 0], -1.0)]);
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.coefficient(&[2, 1]), 3.0);
        assert_eq!(p.coefficient(&[1, 1]), 0.0);
        assert_eq!(p.constant_term(), -1.0);
        assert_eq!(p.max_abs_coefficient(), 3.0);
        assert!(Polynomial::zero(3).is_zero());
        assert!(Polynomial::constant(0.0, 2).is_zero());
        assert_eq!(Polynomial::constant(5.0, 0).eval(&[]), 5.0);
        let lin = Polynomial::linear(&[2.0, -1.0], 0.5);
        assert_eq!(lin.eval(&[1.0, 1.0]), 1.5);
    }

    #[test]
    fn arithmetic_matches_pointwise_semantics() {
        let p = &(&x() * &x()) + &(&y() * 2.0);
        let q = &x() - &Polynomial::constant(1.0, 2);
        let point = [1.5, -2.0];
        assert!(((&p + &q).eval(&point) - (p.eval(&point) + q.eval(&point))).abs() < 1e-12);
        assert!(((&p - &q).eval(&point) - (p.eval(&point) - q.eval(&point))).abs() < 1e-12);
        assert!(((&p * &q).eval(&point) - (p.eval(&point) * q.eval(&point))).abs() < 1e-12);
        assert!(((-&p).eval(&point) + p.eval(&point)).abs() < 1e-12);
        assert!((p.pow(3).eval(&point) - p.eval(&point).powi(3)).abs() < 1e-9);
    }

    #[test]
    fn cancellation_removes_terms() {
        let p = &x() - &x();
        assert!(p.is_zero());
        let q = Polynomial::from_terms(1, vec![(vec![1], 1.0), (vec![1], -1.0)]);
        assert!(q.is_zero());
    }

    #[test]
    fn derivative_and_gradient() {
        // p = x^3 y + 2 y^2
        let p = Polynomial::from_terms(2, vec![(vec![3, 1], 1.0), (vec![0, 2], 2.0)]);
        let px = p.partial_derivative(0);
        let py = p.partial_derivative(1);
        assert_eq!(px, Polynomial::from_terms(2, vec![(vec![2, 1], 3.0)]));
        assert_eq!(
            py,
            Polynomial::from_terms(2, vec![(vec![3, 0], 1.0), (vec![0, 1], 4.0)])
        );
        assert_eq!(p.gradient(), vec![px, py]);
        assert!(Polynomial::constant(3.0, 2).partial_derivative(0).is_zero());
    }

    #[test]
    fn substitution_composes_correctly() {
        // p(u, v) = u^2 + v; substitute u = x + y, v = x*y (over 2 new vars)
        let p = Polynomial::from_terms(2, vec![(vec![2, 0], 1.0), (vec![0, 1], 1.0)]);
        let u = Polynomial::linear(&[1.0, 1.0], 0.0);
        let v = &Polynomial::variable(0, 2) * &Polynomial::variable(1, 2);
        let composed = p.substitute(&[u, v]);
        for &(a, b) in &[(0.5, -1.0), (2.0, 3.0), (-1.5, 0.25)] {
            let expected = (a + b) * (a + b) + a * b;
            assert!((composed.eval(&[a, b]) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn substitution_into_different_variable_count() {
        // p(u) = u^2 - 1, substitute u = x0 + x1 + x2.
        let p = Polynomial::from_terms(1, vec![(vec![2], 1.0), (vec![0], -1.0)]);
        let u = Polynomial::linear(&[1.0, 1.0, 1.0], 0.0);
        let composed = p.substitute(&[u]);
        assert_eq!(composed.nvars(), 3);
        assert!((composed.eval(&[1.0, 2.0, 3.0]) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn interval_evaluation_encloses_range() {
        // p = x^2 - y over x ∈ [-1, 2], y ∈ [0, 1]; range ⊆ [-1, 4]
        let p = &(&x() * &x()) - &y();
        let domain = [Interval::new(-1.0, 2.0), Interval::new(0.0, 1.0)];
        let enclosure = p.eval_interval(&domain);
        assert!(enclosure.lo() <= -1.0 + 1e-12);
        assert!(enclosure.hi() >= 4.0 - 1e-12);
        for &(a, b) in &[(-1.0, 0.0), (2.0, 1.0), (0.0, 0.5), (1.3, 0.9)] {
            assert!(enclosure.contains(p.eval(&[a, b])));
        }
    }

    #[test]
    fn embedding_shifts_variables() {
        let p = Polynomial::linear(&[1.0, 2.0], 3.0);
        let q = p.embedded(4, 1);
        assert_eq!(q.nvars(), 4);
        assert_eq!(q.eval(&[9.0, 1.0, 2.0, 9.0]), 1.0 + 4.0 + 3.0);
    }

    #[test]
    fn from_basis_and_pruning() {
        let basis = monomial_basis(2, 2);
        let coeffs = vec![1.0, 0.0, 0.0, 2.0, 0.0, 1e-16];
        let p = Polynomial::from_basis(2, &basis, &coeffs);
        assert_eq!(p.num_terms(), 2);
        let pruned =
            Polynomial::from_terms(2, vec![(vec![0, 0], 1.0), (vec![2, 0], 1e-6)]).pruned(1e-3);
        assert_eq!(pruned.num_terms(), 1);
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::from_terms(
            2,
            vec![(vec![2, 0], -12.05), (vec![0, 1], 1.0), (vec![0, 0], -5.0)],
        );
        let s = p.to_string_with_names(&["eta", "omega"]);
        assert!(s.contains("eta^2"));
        assert!(s.contains("omega"));
        assert!(s.contains('5'));
        assert_eq!(Polynomial::zero(2).to_string(), "0");
        assert_eq!(Polynomial::variable(0, 1).to_string(), "x0");
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn eval_rejects_wrong_dimension() {
        let _ = x().eval(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "variable counts differ")]
    fn add_rejects_mismatched_variables() {
        let _ = &Polynomial::zero(2) + &Polynomial::zero(3);
    }

    proptest! {
        #[test]
        fn prop_eval_of_sum_is_sum_of_evals(
            c1 in proptest::collection::vec(-5.0..5.0f64, 6),
            c2 in proptest::collection::vec(-5.0..5.0f64, 6),
            px in -2.0..2.0f64, py in -2.0..2.0f64,
        ) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &c1);
            let q = Polynomial::from_basis(2, &basis, &c2);
            let point = [px, py];
            prop_assert!(((&p + &q).eval(&point) - (p.eval(&point) + q.eval(&point))).abs() < 1e-9);
        }

        #[test]
        fn prop_interval_eval_is_conservative(
            coeffs in proptest::collection::vec(-3.0..3.0f64, 10),
            lo_x in -2.0..0.0f64, w_x in 0.0..2.0f64,
            lo_y in -2.0..0.0f64, w_y in 0.0..2.0f64,
            tx in 0.0..1.0f64, ty in 0.0..1.0f64,
        ) {
            let basis = monomial_basis(2, 3);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let dom = [Interval::new(lo_x, lo_x + w_x), Interval::new(lo_y, lo_y + w_y)];
            let sample = [lo_x + tx * w_x, lo_y + ty * w_y];
            let enclosure = p.eval_interval(&dom);
            prop_assert!(enclosure.contains(p.eval(&sample)) ||
                         (enclosure.hi() - p.eval(&sample)).abs() < 1e-9 ||
                         (p.eval(&sample) - enclosure.lo()).abs() < 1e-9);
        }

        #[test]
        fn prop_substitute_identity_is_noop(coeffs in proptest::collection::vec(-3.0..3.0f64, 6),
                                             px in -2.0..2.0f64, py in -2.0..2.0f64) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let identity = vec![Polynomial::variable(0, 2), Polynomial::variable(1, 2)];
            let q = p.substitute(&identity);
            prop_assert!((p.eval(&[px, py]) - q.eval(&[px, py])).abs() < 1e-9);
        }

        #[test]
        fn prop_derivative_of_product_rule(c1 in proptest::collection::vec(-2.0..2.0f64, 3),
                                            c2 in proptest::collection::vec(-2.0..2.0f64, 3),
                                            px in -1.0..1.0f64, py in -1.0..1.0f64) {
            // d/dx (p*q) = p'q + pq'
            let basis = monomial_basis(2, 1);
            let p = Polynomial::from_basis(2, &basis, &c1);
            let q = Polynomial::from_basis(2, &basis, &c2);
            let lhs = (&p * &q).partial_derivative(0);
            let rhs = &(&p.partial_derivative(0) * &q) + &(&p * &q.partial_derivative(0));
            let point = [px, py];
            prop_assert!((lhs.eval(&point) - rhs.eval(&point)).abs() < 1e-9);
        }
    }
}
