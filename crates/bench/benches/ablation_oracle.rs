//! Ablation: oracle-guided program distillation (Algorithm 1) versus directly
//! training the linear program with random search, the comparison discussed
//! in Sec. 5 ("one may ask why we do not directly learn a deterministic
//! program to control the device").

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::rl::{train_ars, ArsConfig, LinearParametricPolicy};
use vrl::synth::{synthesize_program, DistillConfig, ProgramSketch};
use vrl_benchmarks::quadcopter::quadcopter_env;

fn bench_oracle_vs_direct(c: &mut Criterion) {
    let env = quadcopter_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-3.0 * s[0] - 2.5 * s[1]]);
    let sketch = ProgramSketch::affine(2, 1);
    let mut group = c.benchmark_group("ablation_oracle");
    group.sample_size(10);
    group.bench_function("distill_from_oracle", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(3);
            synthesize_program(
                &env,
                &oracle,
                &sketch,
                env.init(),
                None,
                &DistillConfig::smoke_test(),
                &mut rng,
            )
        })
    });
    group.bench_function("direct_random_search", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut policy = LinearParametricPolicy::new(2, 1, 8.0);
            train_ars(&env, &mut policy, &ArsConfig::smoke_test(), &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_vs_direct);
criterion_main!(benches);
