//! Ablation: Euler versus RK4 discretization of the transition relation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::{Integrator, LinearPolicy};
use vrl_benchmarks::pendulum::pendulum_original;

fn bench_integrators(c: &mut Criterion) {
    let base = pendulum_original().into_env();
    let program = LinearPolicy::new(vec![vec![-12.05, -5.87]]);
    let mut group = c.benchmark_group("ablation_integrator");
    for integrator in [Integrator::Euler, Integrator::RungeKutta4] {
        let env = base.clone().with_integrator(integrator);
        group.bench_function(integrator.name(), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                env.rollout(&program, &[0.3, 0.3], 1000, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integrators);
criterion_main!(benches);
