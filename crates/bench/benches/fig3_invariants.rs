//! Fig. 3 bench: invariant inference for the inverted pendulum under the
//! original and the restricted safety bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrl::poly::Polynomial;
use vrl::verify::{verify_nonlinear, VerificationConfig};
use vrl_benchmarks::pendulum::{degrees, pendulum_env};

fn bench_pendulum_invariants(c: &mut Criterion) {
    // The paper's running-example program P(η, ω) = −12.05η − 5.87ω.
    let program = vec![Polynomial::linear(&[-12.05, -5.87], 0.0)];
    let mut group = c.benchmark_group("fig3_invariant_inference");
    group.sample_size(10);
    for (label, eta_bound) in [("fig3a_90deg", 90.0), ("fig3b_30deg", 30.0)] {
        let env = pendulum_env(1.0, 1.0, degrees(eta_bound), degrees(eta_bound.min(90.0)));
        group.bench_with_input(BenchmarkId::from_parameter(label), &env, |b, env| {
            let config = VerificationConfig::with_degree(4);
            b.iter(|| verify_nonlinear(env, &program, env.init(), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pendulum_invariants);
criterion_main!(benches);
