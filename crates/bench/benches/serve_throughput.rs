//! Serving-throughput bench: single-threaded vs. worker-pool `decide_batch`
//! on the pendulum and cartpole deployments, reported as decisions/sec.
//!
//! The shields are built directly from the benchmarks' known stabilizing
//! controllers with ellipsoidal invariants — this bench measures the
//! *serving* hot path (oracle forward pass + shield prediction), not
//! synthesis.  Every deployed shield serves through the compiled polynomial
//! kernels (flat `CompiledPolynomial`/`CompiledPolySet` forms cached at
//! construction) and per-thread oracle scratch buffers, and the batch rows
//! run the fully lane-batched decide path — successor prediction steps each
//! chunk through one sweep of the compiled dynamics family
//! (`step_deterministic_batch`) before the lane-batched certificate
//! classification — so the numbers here are the compiled-path numbers;
//! `BENCH_eval.json` records them alongside the kernel microbenchmarks from
//! `eval_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use vrl::dynamics::EnvironmentContext;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::fixtures;
use vrl_runtime::{ShieldArtifact, ShieldServer};

const BATCH: usize = 8192;

fn deployment_artifact(name: &str, gains: &[f64], radii: &[f64], seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name(name)
        .expect("Table 1 benchmark")
        .into_env();
    // The Table 1 network sizes, so the oracle forward pass is realistic.
    fixtures::demo_artifact(&env, gains, radii, &[240, 200], seed).expect("dimensions agree")
}

fn sample_batch(env: &EnvironmentContext, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let safe = env.safety().safe_box().clone();
    (0..count).map(|_| safe.sample(&mut rng)).collect()
}

fn bench_deployment(c: &mut Criterion, name: &str, gains: &[f64], radii: &[f64]) {
    let artifact = deployment_artifact(name, gains, radii, 17);
    let states = sample_batch(artifact.shield().env(), BATCH, 23);
    let mut group = c.benchmark_group(format!("serve_throughput/{name}"));
    group.sample_size(10);
    // Scalar baseline: the same workload served one `decide` at a time
    // (what `decide_batch` used to lower to before the lane-batched
    // kernels), so the batch rows below read as a direct speedup.
    {
        let server = ShieldServer::with_workers(1);
        server
            .deploy(
                name,
                ShieldArtifact::from_bytes(&artifact.to_bytes()).unwrap(),
            )
            .unwrap();
        let scalar_states = &states[..BATCH / 8];
        group.bench_with_input(
            BenchmarkId::from_parameter("scalar_loop"),
            &server,
            |b, server| {
                b.iter(|| {
                    for state in scalar_states {
                        let d = server.decide(name, state).unwrap();
                        assert!(!d.action.is_empty());
                    }
                })
            },
        );
        let start = Instant::now();
        let rounds = 3;
        for _ in 0..rounds {
            for state in scalar_states {
                let _ = server.decide(name, state).unwrap();
            }
        }
        let elapsed = start.elapsed();
        println!(
            "  -> {name} scalar decide loop: {:.0} decisions/sec",
            (scalar_states.len() * rounds) as f64 / elapsed.as_secs_f64()
        );
    }
    for workers in [1usize, 4, 8] {
        let server = ShieldServer::with_workers(workers);
        server
            .deploy(
                name,
                ShieldArtifact::from_bytes(&artifact.to_bytes()).unwrap(),
            )
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}workers")),
            &server,
            |b, server| {
                b.iter(|| {
                    let decisions = server.decide_batch(name, &states).unwrap();
                    assert_eq!(decisions.len(), BATCH);
                    decisions
                })
            },
        );
        // Also report absolute throughput once per configuration, since
        // decisions/sec is the number the ROADMAP cares about.
        let start = Instant::now();
        let rounds = 3;
        for _ in 0..rounds {
            let _ = server.decide_batch(name, &states).unwrap();
        }
        let elapsed = start.elapsed();
        println!(
            "  -> {name} x{workers} workers (compiled shield): {:.0} decisions/sec",
            (BATCH * rounds) as f64 / elapsed.as_secs_f64()
        );
    }
    group.finish();
}

/// Measures what the observability instrumentation costs on the serving
/// hot path: the same pendulum `decide_batch` workload with the
/// [`vrl_obs::enabled`] gate on (the default) vs. off.  The per-request
/// recording is one histogram observation plus three relaxed counter adds
/// (see `vrl-runtime`'s `telemetry` module), and the acceptance bar is
/// < 2 % overhead with the gate on; the measured pair merges into
/// `BENCH_eval.json` under `observability_overhead`.
fn bench_observability_overhead(c: &mut Criterion) {
    let artifact = deployment_artifact(
        "pendulum",
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        17,
    );
    let states = sample_batch(artifact.shield().env(), BATCH, 23);
    let server = ShieldServer::with_workers(4);
    server.deploy("pendulum", artifact).unwrap();

    let mut group = c.benchmark_group("serve_throughput/observability");
    group.sample_size(10);
    for (label, enabled) in [("obs_on", true), ("obs_off", false)] {
        vrl_obs::set_enabled(enabled);
        group.bench_function(label, |b| {
            b.iter(|| {
                let decisions = server.decide_batch("pendulum", &states).unwrap();
                assert_eq!(decisions.len(), BATCH);
                decisions
            })
        });
    }
    group.finish();

    // Sustained decisions/sec for BENCH_eval.json, ~2 s of wall clock per
    // side with a warm-up round each.
    let timed = |enabled: bool| -> f64 {
        vrl_obs::set_enabled(enabled);
        let _ = server.decide_batch("pendulum", &states).unwrap();
        let start = Instant::now();
        let mut decisions = 0u64;
        while start.elapsed().as_secs_f64() < 2.0 {
            decisions += server.decide_batch("pendulum", &states).unwrap().len() as u64;
        }
        decisions as f64 / start.elapsed().as_secs_f64()
    };
    let off_per_sec = timed(false);
    let on_per_sec = timed(true);
    vrl_obs::set_enabled(true);
    let overhead_pct = 100.0 * (1.0 - on_per_sec / off_per_sec);
    println!(
        "  -> observability overhead (pendulum x4 workers, batch {BATCH}): \
         {on_per_sec:.0} decisions/sec instrumented vs {off_per_sec:.0} gated off \
         ({overhead_pct:+.2}% overhead)"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    vrl_bench::upsert_bench_sections(
        path,
        &[(
            "observability_overhead",
            format!(
                "{{\n    \"batch_size\": {BATCH},\n    \"decisions_per_sec_obs_on\": {on_per_sec:.0},\n    \"decisions_per_sec_obs_off\": {off_per_sec:.0},\n    \"overhead_pct\": {overhead_pct:.2}\n  }}"
            ),
        )],
    )
    .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");
}

fn bench_serve_throughput(c: &mut Criterion) {
    bench_deployment(
        c,
        "pendulum",
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
    );
    bench_deployment(
        c,
        "cartpole",
        &fixtures::CARTPOLE_GAINS,
        &fixtures::CARTPOLE_RADII,
    );
    bench_observability_overhead(c);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
