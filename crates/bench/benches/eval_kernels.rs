//! Compiled-kernel evaluation benchmarks: reference (sparse `BTreeMap`)
//! polynomial evaluation vs the flat [`CompiledPolynomial`] /
//! [`CompiledPolySet`] kernels (point and interval, scalar and
//! lane-batched), plus branch-and-bound end-to-end — the pendulum and
//! cartpole induction queries, a traversal-invariant dense deep proof, and
//! a query-cache re-proof loop — and a compiled-shield serving throughput
//! probe.
//!
//! Besides the usual per-benchmark timing output, this bench records its
//! headline numbers (reference vs compiled, speedups, decisions/sec) in
//! `BENCH_eval.json` at the workspace root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use vrl::poly::{
    basis_size, monomial_basis, BatchBoxes, BatchPoints, Interval, PolyScratch, Polynomial,
};
use vrl::solver::{
    prove_bound, query_cache_stats, reset_query_cache, BoundQuery, BranchBoundConfig, ProofOutcome,
};
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::{fixtures, ShieldServer};

/// A dense degree-4 polynomial in 4 variables (70 terms): the workload the
/// acceptance criterion names.
fn dense_poly() -> Polynomial {
    let nvars = 4;
    let degree = 4;
    let basis = monomial_basis(nvars, degree);
    assert_eq!(basis.len(), basis_size(nvars, degree));
    let mut rng = SmallRng::seed_from_u64(42);
    let coeffs: Vec<f64> = (0..basis.len()).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Polynomial::from_basis(nvars, &basis, &coeffs)
}

fn sample_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.5..1.5)).collect())
        .collect()
}

fn sample_boxes(n: usize, dim: usize, seed: u64) -> Vec<Vec<Interval>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    let lo = rng.gen_range(-1.5..1.0);
                    Interval::new(lo, lo + rng.gen_range(0.0..0.5))
                })
                .collect()
        })
        .collect()
}

/// Times `f` over `rounds` full passes, returning seconds per pass.
fn time_per_pass(rounds: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up pass so scratch buffers reach steady state.
    f();
    let start = Instant::now();
    for _ in 0..rounds {
        f();
    }
    start.elapsed().as_secs_f64() / rounds as f64
}

struct KernelNumbers {
    point_reference: f64,
    point_compiled: f64,
    point_batch: f64,
    interval_reference: f64,
    interval_compiled: f64,
    interval_batch: f64,
}

fn bench_eval_kernels(c: &mut Criterion) -> KernelNumbers {
    let p = dense_poly();
    let compiled = p.compile();
    let points = sample_points(4096, p.nvars(), 7);
    let batch = BatchPoints::from_states(p.nvars(), &points);
    let boxes = sample_boxes(4096, p.nvars(), 8);
    let box_batch = BatchBoxes::from_boxes(p.nvars(), &boxes);
    let mut scratch = PolyScratch::new();
    let mut batch_out = Vec::new();
    let mut interval_out: Vec<Interval> = Vec::new();

    let mut group = c.benchmark_group("eval_kernels/dense_deg4_4var");
    group.sample_size(20);
    group.bench_function("point/reference", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for point in &points {
                acc += p.eval(black_box(point));
            }
            acc
        })
    });
    group.bench_function("point/compiled", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for point in &points {
                acc += compiled.eval_with(black_box(point), &mut scratch);
            }
            acc
        })
    });
    group.bench_function("point/batch", |b| {
        b.iter(|| {
            compiled.evaluate_batch_with(black_box(&batch), &mut batch_out, &mut scratch);
            batch_out.iter().sum::<f64>()
        })
    });
    group.bench_function("interval/reference", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for domain in &boxes {
                acc += p.eval_interval(black_box(domain)).hi();
            }
            acc
        })
    });
    group.bench_function("interval/compiled", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for domain in &boxes {
                acc += compiled
                    .eval_interval_with(black_box(domain), &mut scratch)
                    .hi();
            }
            acc
        })
    });
    group.bench_function("interval/batch", |b| {
        b.iter(|| {
            compiled.evaluate_interval_batch_with(
                black_box(&box_batch),
                &mut interval_out,
                &mut scratch,
            );
            interval_out.iter().map(Interval::hi).sum::<f64>()
        })
    });
    group.finish();

    // Headline numbers for BENCH_eval.json (seconds per 4096 evaluations).
    let point_reference = time_per_pass(20, || {
        let mut acc = 0.0;
        for point in &points {
            acc += p.eval(black_box(point));
        }
        black_box(acc);
    });
    let point_compiled = time_per_pass(20, || {
        let mut acc = 0.0;
        for point in &points {
            acc += compiled.eval_with(black_box(point), &mut scratch);
        }
        black_box(acc);
    });
    let point_batch = time_per_pass(20, || {
        compiled.evaluate_batch_with(black_box(&batch), &mut batch_out, &mut scratch);
        black_box(batch_out.iter().sum::<f64>());
    });
    let interval_reference = time_per_pass(20, || {
        let mut acc = 0.0;
        for domain in &boxes {
            acc += p.eval_interval(black_box(domain)).hi();
        }
        black_box(acc);
    });
    let interval_compiled = time_per_pass(20, || {
        let mut acc = 0.0;
        for domain in &boxes {
            acc += compiled
                .eval_interval_with(black_box(domain), &mut scratch)
                .hi();
        }
        black_box(acc);
    });
    let interval_batch = time_per_pass(20, || {
        compiled.evaluate_interval_batch_with(
            black_box(&box_batch),
            &mut interval_out,
            &mut scratch,
        );
        black_box(interval_out.iter().map(Interval::hi).sum::<f64>());
    });
    println!(
        "  -> point eval speedup: {:.2}x scalar-compiled, {:.2}x batch-compiled; interval eval speedup: {:.2}x scalar-compiled, {:.2}x batch-compiled",
        point_reference / point_compiled,
        point_reference / point_batch,
        interval_reference / interval_compiled,
        interval_reference / interval_batch
    );
    KernelNumbers {
        point_reference,
        point_compiled,
        point_batch,
        interval_reference,
        interval_compiled,
        interval_batch,
    }
}

/// The pre-compilation branch-and-bound loop (the seed implementation):
/// interval evaluation straight off the sparse representation, fresh
/// `collect()`s per node.  Kept here as the end-to-end baseline.
fn reference_prove_bound(
    objective: &Polynomial,
    bound: f64,
    guards: &[&Polynomial],
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    let mut stack: Vec<Vec<Interval>> = vec![domain.to_vec()];
    let mut boxes_examined = 0usize;
    let mut undecided = false;
    while let Some(current) = stack.pop() {
        boxes_examined += 1;
        if boxes_examined > config.max_boxes {
            return ProofOutcome::Unknown {
                boxes_examined,
                worst_box: None,
            };
        }
        if guards.iter().any(|g| g.eval_interval(&current).lo() > 0.0) {
            continue;
        }
        let enclosure = objective.eval_interval(&current);
        if enclosure.hi() <= bound + config.tolerance {
            continue;
        }
        let midpoint: Vec<f64> = current.iter().map(Interval::midpoint).collect();
        let candidates = [
            midpoint,
            current.iter().map(Interval::lo).collect::<Vec<f64>>(),
            current.iter().map(Interval::hi).collect::<Vec<f64>>(),
        ];
        let mut cex = None;
        for point in candidates {
            if guards.iter().all(|g| g.eval(&point) <= 0.0) {
                let value = objective.eval(&point);
                if value > bound {
                    cex = Some(ProofOutcome::Counterexample { point, value });
                    break;
                }
            }
        }
        if let Some(cex) = cex {
            return cex;
        }
        let widest = current.iter().map(Interval::width).fold(0.0f64, f64::max);
        if widest <= config.min_width {
            undecided = true;
            continue;
        }
        let split_dim = current
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.width()
                    .partial_cmp(&b.1.width())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let (left, right) = current[split_dim].bisect();
        let mut left_box = current.clone();
        left_box[split_dim] = left;
        let mut right_box = current;
        right_box[split_dim] = right;
        stack.push(left_box);
        stack.push(right_box);
    }
    if undecided {
        ProofOutcome::Unknown {
            boxes_examined,
            worst_box: None,
        }
    } else {
        ProofOutcome::Proved { boxes_examined }
    }
}

/// Builds the induction query `E(s') ≤ 0` under guard `E(s) ≤ 0` for one
/// Table 1 benchmark with its known stabilizing gains and ellipsoid radii.
fn induction_query(
    name: &str,
    gains: &[f64],
    radii: &[f64],
) -> (Polynomial, Polynomial, Vec<Interval>) {
    let env = benchmark_by_name(name)
        .expect("Table 1 benchmark")
        .into_env();
    let program = vec![Polynomial::linear(gains, 0.0)];
    let successor = env.successor_polynomials(&program);
    let barrier = fixtures::ellipsoid_certificate(&env, radii)
        .polynomial()
        .clone();
    let next_value = barrier.substitute(&successor);
    let domain = env.safety().safe_box().to_intervals();
    (next_value, barrier, domain)
}

fn bench_branch_bound(
    c: &mut Criterion,
    name: &str,
    gains: &[f64],
    radii: &[f64],
) -> (f64, f64, f64) {
    let (next_value, barrier, domain) = induction_query(name, gains, radii);
    let scalar_config = BranchBoundConfig {
        max_boxes: 50_000,
        lane_batched: false,
        ..BranchBoundConfig::default()
    };
    let batched_config = BranchBoundConfig {
        max_boxes: 50_000,
        ..BranchBoundConfig::default()
    };
    // All paths must agree on the outcome before we time them; the scalar
    // and batched modes must agree exactly.
    let query = BoundQuery::new(&next_value, 0.0).with_guard(&barrier);
    let scalar_outcome = prove_bound(&query, &domain, &scalar_config);
    let batched_outcome = prove_bound(&query, &domain, &batched_config);
    assert_eq!(
        scalar_outcome, batched_outcome,
        "scalar and lane-batched branch-and-bound disagree on {name}"
    );
    let reference_outcome =
        reference_prove_bound(&next_value, 0.0, &[&barrier], &domain, &batched_config);
    assert_eq!(
        batched_outcome.is_proved(),
        reference_outcome.is_proved(),
        "compiled and reference branch-and-bound disagree on {name}"
    );

    let mut group = c.benchmark_group(format!("eval_kernels/branch_bound/{name}"));
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| reference_prove_bound(&next_value, 0.0, &[&barrier], &domain, &batched_config))
    });
    group.bench_function("compiled_scalar", |b| {
        b.iter(|| prove_bound(&query, &domain, &scalar_config))
    });
    group.bench_function("compiled_batched", |b| {
        b.iter(|| prove_bound(&query, &domain, &batched_config))
    });
    group.finish();

    let reference = time_per_pass(3, || {
        black_box(reference_prove_bound(
            &next_value,
            0.0,
            &[&barrier],
            &domain,
            &batched_config,
        ));
    });
    let scalar = time_per_pass(3, || {
        black_box(prove_bound(&query, &domain, &scalar_config));
    });
    let batched = time_per_pass(3, || {
        black_box(prove_bound(&query, &domain, &batched_config));
    });
    println!(
        "  -> {name} branch-and-bound speedup: {:.2}x scalar-compiled, {:.2}x lane-batched",
        reference / scalar,
        reference / batched
    );
    (reference, scalar, batched)
}

/// A traversal-invariant deep *proof*: `p ≤ max + margin` for the dense
/// degree-4 polynomial over `[-1, 1]⁴`, with the sound maximum computed
/// first.  A proved query examines exactly the recursion tree regardless of
/// frontier order (every box's fate depends only on the box), so — unlike
/// the refutation-style induction rows above, where the wave order changes
/// which counterexample surfaces first — this row isolates the evaluation
/// kernels: reference vs scalar-compiled vs lane-batched over the *same*
/// boxes.
fn bench_dense_proof(c: &mut Criterion) -> (f64, f64, f64) {
    let p = dense_poly();
    let domain = vec![Interval::new(-1.0, 1.0); p.nvars()];
    let negated = -&p;
    let true_max = -vrl::solver::sound_minimum(&negated, &domain, 200_000);
    let bound = true_max + 1e-3 * (1.0 + true_max.abs());
    let query = BoundQuery::new(&p, bound);
    let scalar_config = BranchBoundConfig {
        lane_batched: false,
        ..BranchBoundConfig::default()
    };
    let batched_config = BranchBoundConfig::default();
    let scalar_outcome = prove_bound(&query, &domain, &scalar_config);
    let batched_outcome = prove_bound(&query, &domain, &batched_config);
    assert_eq!(scalar_outcome, batched_outcome);
    assert!(scalar_outcome.is_proved(), "the bound must be provable");
    let reference_outcome = reference_prove_bound(&p, bound, &[], &domain, &batched_config);
    assert!(reference_outcome.is_proved());

    let mut group = c.benchmark_group("eval_kernels/branch_bound/dense_proof");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| reference_prove_bound(&p, bound, &[], &domain, &batched_config))
    });
    group.bench_function("compiled_scalar", |b| {
        b.iter(|| prove_bound(&query, &domain, &scalar_config))
    });
    group.bench_function("compiled_batched", |b| {
        b.iter(|| prove_bound(&query, &domain, &batched_config))
    });
    group.finish();

    let reference = time_per_pass(5, || {
        black_box(reference_prove_bound(
            &p,
            bound,
            &[],
            &domain,
            &batched_config,
        ));
    });
    let scalar = time_per_pass(5, || {
        black_box(prove_bound(&query, &domain, &scalar_config));
    });
    let batched = time_per_pass(5, || {
        black_box(prove_bound(&query, &domain, &batched_config));
    });
    println!(
        "  -> dense-proof branch-and-bound speedup: {:.2}x scalar-compiled, {:.2}x lane-batched",
        reference / scalar,
        reference / batched
    );
    (reference, scalar, batched)
}

/// Cache behavior of a CEGIS-style re-proof loop: the same induction query
/// re-proved `repeats` times.  Every proof after the first pulls its
/// compiled `objective + guards` family from the per-thread query cache;
/// the returned triple is `(hits, misses, hit_rate)` over the loop.
fn measure_query_cache(repeats: u64) -> (u64, u64, f64) {
    let (next_value, barrier, domain) = induction_query(
        "pendulum",
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
    );
    let query = BoundQuery::new(&next_value, 0.0).with_guard(&barrier);
    let config = BranchBoundConfig {
        max_boxes: 50_000,
        ..BranchBoundConfig::default()
    };
    reset_query_cache();
    for _ in 0..repeats {
        black_box(prove_bound(&query, &domain, &config));
    }
    let stats = query_cache_stats();
    reset_query_cache();
    (stats.hits, stats.misses, stats.hit_rate())
}

/// Serving throughput with the compiled shield (decisions/sec), pendulum
/// deployment, single worker: the scalar path loops per-state `decide`,
/// the batched path hands the same states to `decide_batch` (lane-batched
/// oracle forward + certificate kernels).  Both paths produce identical
/// decisions; the returned pair is `(scalar, batched)` decisions/sec.
fn measure_serving_throughput() -> (f64, f64) {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[240, 200],
        17,
    )
    .expect("dimensions agree");
    let server = ShieldServer::with_workers(1);
    server.deploy("pendulum", artifact).unwrap();
    let mut rng = SmallRng::seed_from_u64(23);
    let safe = env.safety().safe_box().clone();
    let states: Vec<Vec<f64>> = (0..8192).map(|_| safe.sample(&mut rng)).collect();
    // Warm up both paths (scratch growth) and pin batch/scalar agreement.
    let batch_decisions = server.decide_batch("pendulum", &states[..256]).unwrap();
    for (state, batched) in states[..256].iter().zip(batch_decisions.iter()) {
        assert_eq!(&server.decide("pendulum", state).unwrap(), batched);
    }
    let rounds = 5;
    let start = Instant::now();
    for _ in 0..rounds {
        for state in &states {
            black_box(server.decide("pendulum", state).unwrap());
        }
    }
    let scalar = (states.len() * rounds) as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..rounds {
        let _ = black_box(server.decide_batch("pendulum", &states).unwrap());
    }
    let batched = (states.len() * rounds) as f64 / start.elapsed().as_secs_f64();
    (scalar, batched)
}

fn write_results(
    kernels: &KernelNumbers,
    pendulum: (f64, f64, f64),
    cartpole: (f64, f64, f64),
    dense: (f64, f64, f64),
    cache: (u64, u64, f64),
    serving: (f64, f64),
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    let eval_section = |reference: f64, compiled: f64, batch: f64| {
        format!(
            "{{\n    \"reference_sec\": {:.6e},\n    \"compiled_sec\": {:.6e},\n    \"batch_sec\": {:.6e},\n    \"speedup_compiled\": {:.2},\n    \"speedup_batch\": {:.2},\n    \"batch_vs_scalar_compiled\": {:.2}\n  }}",
            reference,
            compiled,
            batch,
            reference / compiled,
            reference / batch,
            compiled / batch,
        )
    };
    let bb_section = |(reference, scalar, batched): (f64, f64, f64)| {
        format!(
            "{{\n    \"reference_sec\": {:.6e},\n    \"scalar_sec\": {:.6e},\n    \"batched_sec\": {:.6e},\n    \"speedup_scalar\": {:.2},\n    \"speedup_batched\": {:.2},\n    \"batched_vs_scalar\": {:.2}\n  }}",
            reference,
            scalar,
            batched,
            reference / scalar,
            reference / batched,
            scalar / batched,
        )
    };
    let description = "\"Compiled evaluation kernels: reference (sparse BTreeMap) vs compiled (flat SoA) vs lane-batched (8-wide SoA sweeps) paths. Point/interval rows are seconds per 4096 evaluations of a dense degree-4, 4-variable polynomial (70 terms); branch_bound pendulum/cartpole rows are seconds per CEGIS-style induction query (these refute, so reference-vs-wave deltas mix kernel speed with which counterexample the traversal surfaces first; scalar_sec pops the same 8-box waves through the scalar interval kernel, batched_sec through the lane-batched kernel — identical outcomes); branch_bound_dense_proof is a traversal-invariant deep proof (identical box tree in every arm), isolating the kernels; query_cache is a 50x re-proof loop of the pendulum induction query through the per-thread CompiledQueryCache; serving rows are single-worker decisions/sec on the pendulum deployment with a [240, 200] oracle — scalar loops per-state decide, batch is decide_batch through the lane-batched dynamics-step + oracle + certificate kernels (bit-identical decisions); serve_http rows come from the serve_http bench (loopback HTTP front-end, keep-alive, batched JSON decide bodies).\"".to_string();
    vrl_bench::upsert_bench_sections(
        path,
        &[
            ("description", description),
            (
                "point_eval",
                eval_section(
                    kernels.point_reference,
                    kernels.point_compiled,
                    kernels.point_batch,
                ),
            ),
            (
                "interval_eval",
                eval_section(
                    kernels.interval_reference,
                    kernels.interval_compiled,
                    kernels.interval_batch,
                ),
            ),
            ("branch_bound_pendulum", bb_section(pendulum)),
            ("branch_bound_cartpole", bb_section(cartpole)),
            ("branch_bound_dense_proof", bb_section(dense)),
            (
                "query_cache_reproof_loop",
                format!(
                    "{{\n    \"repeats\": 50,\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {:.3}\n  }}",
                    cache.0, cache.1, cache.2,
                ),
            ),
            (
                "serving_compiled_shield",
                format!(
                    "{{\n    \"scalar_decide_per_sec\": {:.0},\n    \"batch_decide_per_sec\": {:.0},\n    \"batch_speedup\": {:.2}\n  }}",
                    serving.0,
                    serving.1,
                    serving.1 / serving.0,
                ),
            ),
        ],
    )
    .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");
}

fn bench_all(c: &mut Criterion) {
    let kernels = bench_eval_kernels(c);
    let pendulum = bench_branch_bound(
        c,
        "pendulum",
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
    );
    let cartpole = bench_branch_bound(
        c,
        "cartpole",
        &fixtures::CARTPOLE_GAINS,
        &fixtures::CARTPOLE_RADII,
    );
    let dense = bench_dense_proof(c);
    let cache = measure_query_cache(50);
    println!(
        "  -> query cache over a 50x re-proof loop: {} hits / {} misses ({:.1}% hit rate)",
        cache.0,
        cache.1,
        cache.2 * 100.0
    );
    let serving = measure_serving_throughput();
    println!(
        "  -> compiled-shield serving (1 worker): {:.0} decisions/sec scalar decide, {:.0} decisions/sec decide_batch ({:.2}x)",
        serving.0,
        serving.1,
        serving.1 / serving.0
    );
    write_results(&kernels, pendulum, cartpole, dense, cache, serving);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
