//! Scenario-farm bench: ≥100 concurrent CEGIS jobs through the worker
//! pool, reported as jobs/sec alongside the shared (L2) query-cache
//! hit-rate and shard-lock contention the churn produces.
//!
//! The job set cycles the quadcopter drag grid so concurrent workers
//! repeatedly query the same compiled certificate families: L1 caches
//! are per-thread, so the repeats land on the process-wide L2 store and
//! its sharded locks — exactly the contention a farm-scale run stresses.
//! The single-thread run is the determinism baseline (the pooled run
//! must reproduce its outcomes bit-for-bit); the pooled run is the
//! headline number.  Both merge into `BENCH_eval.json` under `farm`.

use criterion::{criterion_group, criterion_main, Criterion};
use vrl::shield::{CegisConfig, TableConfig};
use vrl::solver::{reset_shared_query_cache, shared_query_cache_stats};
use vrl_farm::{generate, run_farm, FarmConfig, FarmReport, JobConfig, Scenario};

/// Acceptance floor: the farm section must be measured under at least
/// this many concurrent jobs.
const JOBS: usize = 112;
const THREADS: usize = 8;

fn job_set() -> Vec<Scenario> {
    let grid: Vec<Scenario> = generate(&FarmConfig::default())
        .into_iter()
        .filter(|s| s.family() == "quadcopter")
        .collect();
    assert!(!grid.is_empty());
    (0..JOBS).map(|i| grid[i % grid.len()].clone()).collect()
}

fn job_config() -> JobConfig {
    let mut cegis = CegisConfig::smoke_test();
    cegis.distill.iterations = 30;
    cegis.distill.trajectories = 2;
    cegis.distill.horizon = 150;
    JobConfig {
        cegis,
        oracle_hidden: vec![8],
        table: Some(TableConfig::uniform(8)),
        timeout: None,
    }
}

fn outcome_labels(report: &FarmReport) -> Vec<&'static str> {
    report.records.iter().map(|r| r.outcome.label()).collect()
}

fn bench_farm(c: &mut Criterion) {
    let jobs = job_set();
    let config = job_config();

    // Criterion sample: a small farm slice through the pool, so regressions
    // in scheduler overhead surface as a timing change.
    let slice = &jobs[..16];
    let mut group = c.benchmark_group("farm");
    group.sample_size(10);
    group.bench_function(format!("{}jobs_{THREADS}threads", slice.len()), |b| {
        b.iter(|| {
            let report = run_farm(slice, &config, THREADS);
            assert_eq!(report.records.len(), slice.len());
            report
        })
    });
    group.finish();

    // Timed full run: single-thread baseline first, then the pool, with
    // the shared-cache counters reset before each so the recorded L2
    // numbers belong to that run alone.
    reset_shared_query_cache();
    let single = run_farm(&jobs, &config, 1);
    let single_stats = shared_query_cache_stats();

    reset_shared_query_cache();
    let pooled = run_farm(&jobs, &config, THREADS);
    let pooled_stats = shared_query_cache_stats();

    assert_eq!(
        outcome_labels(&single),
        outcome_labels(&pooled),
        "the pooled farm must reproduce the single-thread outcomes"
    );
    let synthesized = pooled.synthesized();
    assert!(synthesized >= 1);

    println!(
        "  -> farm: {JOBS} jobs, {synthesized} synthesized; \
         x1 {:.1} jobs/sec, x{THREADS} {:.1} jobs/sec",
        single.jobs_per_sec(),
        pooled.jobs_per_sec()
    );
    println!(
        "  -> L2 query cache (x{THREADS}): {:.1}% hit rate ({} hits / {} misses), \
         {} contended acquires, {:.3} ms lock wait",
        100.0 * pooled_stats.hit_rate(),
        pooled_stats.hits,
        pooled_stats.misses,
        pooled_stats.contended_acquires,
        pooled_stats.lock_wait_ns as f64 / 1e6
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    vrl_bench::upsert_bench_sections(
        path,
        &[(
            "farm",
            format!(
                "{{\n    \"jobs\": {JOBS},\n    \"threads\": {THREADS},\n    \"synthesized\": {synthesized},\n    \"jobs_per_sec_1_thread\": {:.2},\n    \"jobs_per_sec_pooled\": {:.2},\n    \"l2_hit_rate_1_thread\": {:.4},\n    \"l2_hit_rate_pooled\": {:.4},\n    \"l2_hits_pooled\": {},\n    \"l2_misses_pooled\": {},\n    \"l2_contended_acquires_pooled\": {},\n    \"l2_lock_wait_ms_pooled\": {:.3},\n    \"l2_contention_rate_pooled\": {:.6}\n  }}",
                single.jobs_per_sec(),
                pooled.jobs_per_sec(),
                single_stats.hit_rate(),
                pooled_stats.hit_rate(),
                pooled_stats.hits,
                pooled_stats.misses,
                pooled_stats.contended_acquires,
                pooled_stats.lock_wait_ns as f64 / 1e6,
                pooled_stats.contention_rate(),
            ),
        )],
    )
    .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");
}

criterion_group!(benches, bench_farm);
criterion_main!(benches);
