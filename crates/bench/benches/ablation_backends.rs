//! Ablation: the exact quadratic-Lyapunov back-end versus the general
//! branch-and-bound barrier back-end on the same affine system.

use criterion::{criterion_group, criterion_main, Criterion};
use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::poly::Polynomial;
use vrl::verify::{verify_linear, verify_nonlinear, VerificationConfig};

fn double_integrator() -> EnvironmentContext {
    let a = vec![vec![0.0, 1.0], vec![0.0, 0.0]];
    let b = vec![vec![0.0], vec![1.0]];
    EnvironmentContext::new(
        "di",
        PolyDynamics::linear(&a, &b, None),
        0.01,
        BoxRegion::symmetric(&[0.3, 0.3]),
        SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
    )
}

fn bench_backends(c: &mut Criterion) {
    let env = double_integrator();
    let program = vec![Polynomial::linear(&[-2.0, -3.0], 0.0)];
    let config = VerificationConfig::with_degree(2);
    let mut group = c.benchmark_group("ablation_backends");
    group.sample_size(10);
    // Both back-ends are timed on the same verification query; the
    // branch-and-bound back-end may report an inconclusive result at this
    // degree, which is part of what the ablation measures.
    group.bench_function("quadratic_lyapunov", |b| {
        b.iter(|| verify_linear(&env, &program, env.init(), &config))
    });
    group.bench_function("branch_and_bound_barrier", |b| {
        b.iter(|| verify_nonlinear(&env, &program, env.init(), &config))
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
