//! Ablation: per-step cost of the shield (the source of the Overhead column).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::{ClosurePolicy, Policy};
use vrl::shield::{synthesize_shield, CegisConfig, ShieldedPolicy};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::quadcopter::quadcopter_env;

fn bench_shield_overhead(c: &mut Criterion) {
    let env = quadcopter_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-3.0 * s[0] - 2.5 * s[1]]);
    let config = CegisConfig {
        verification: VerificationConfig::with_degree(2),
        ..CegisConfig::smoke_test()
    };
    let mut rng = SmallRng::seed_from_u64(17);
    let (shield, _) = synthesize_shield(&env, &oracle, &config, &mut rng).unwrap();
    let mut group = c.benchmark_group("ablation_shield");
    group.bench_function("oracle_decision", |b| {
        b.iter(|| oracle.action(&[0.2, -0.1]))
    });
    group.bench_function("shielded_decision", |b| {
        let shielded = ShieldedPolicy::new(&shield, &oracle);
        b.iter(|| shielded.action(&[0.2, -0.1]))
    });
    group.bench_function("shield_predict_and_check", |b| {
        b.iter(|| shield.decide(&[0.2, -0.1], &[1.0]))
    });
    group.finish();
}

criterion_group!(benches, bench_shield_overhead);
criterion_main!(benches);
