//! Precomputed decision-table benchmarks: `Shield::decide` with an
//! interval-certified table vs the exact compiled path.
//!
//! The headline shield is deliberately certificate-heavy — sixteen pieces
//! with degree-6 certificates on the pendulum, so the exact path's
//! first-containing-piece scan dominates each decision — and throughput is
//! measured on *table-covered* states (the predicted successor lands in a
//! certified-covered cell), where the table answers in O(1).  Both paths
//! still pay the dynamics step; the table cannot skip physics.
//!
//! Honest counterpoints recorded alongside: the single-piece pendulum demo
//! shield (much less certificate work to skip, much smaller win), and a
//! per-benchmark sweep over all 15 Table 1 environments recording build
//! time, memory, and the boundary-cell fraction at a dimension-bounded
//! resolution.
//!
//! Results land in the `decide_table` section of `BENCH_eval.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use vrl::dynamics::EnvironmentContext;
use vrl::shield::{Shield, ShieldPiece, TableConfig};
use vrl::synth::PolicyProgram;
use vrl::verify::BarrierCertificate;
use vrl_benchmarks::{all_benchmarks, benchmark_by_name};
use vrl_runtime::fixtures;

/// Number of pieces in the headline shield.
const HEADLINE_PIECES: usize = 16;

/// The ellipsoid `Σ (x_i / r_i)² − 1` cubed: a degree-6 certificate with
/// the same sublevel region as the ellipsoid (`q³ ≤ 0 ⇔ q ≤ 0`) but three
/// times the evaluation work per membership test.
fn cubed_ellipsoid(env: &EnvironmentContext, radii: &[f64]) -> BarrierCertificate {
    let q = fixtures::ellipsoid_certificate(env, radii)
        .polynomial()
        .clone();
    BarrierCertificate::new(&(&q * &q) * &q)
}

/// The certificate-heavy headline shield: fifteen concentric decoy pieces
/// whose tiny invariants contain almost nothing, then the real piece sized
/// at a quarter of the safe box.  The exact path's coverage scan evaluates
/// all sixteen degree-6 certificates for a typical state; the table answers
/// from one certified cell.
fn headline_shield(env: &EnvironmentContext) -> Shield {
    let safe = env.safety().safe_box();
    let widths: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| hi - lo)
        .collect();
    let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
    let program = || PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
    let mut pieces = Vec::with_capacity(HEADLINE_PIECES);
    for decoy in 0..HEADLINE_PIECES - 1 {
        let scale = 0.01 + 0.005 * decoy as f64;
        let radii: Vec<f64> = widths.iter().map(|w| scale * w).collect();
        pieces.push(ShieldPiece::new(program(), cubed_ellipsoid(env, &radii)));
    }
    let radii: Vec<f64> = widths.iter().map(|w| 0.25 * w).collect();
    pieces.push(ShieldPiece::new(program(), cubed_ellipsoid(env, &radii)));
    Shield::new(env.clone(), pieces)
}

/// Samples `count` (state, proposal) pairs whose predicted successor lands
/// in a *certified-covered* table cell — the states the tentpole's O(1)
/// claim is about.
fn covered_states(
    env: &EnvironmentContext,
    tabled: &Shield,
    count: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let table = tabled.table().expect("headline shield has a table");
    let safe = env.safety().safe_box().clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut states = Vec::with_capacity(count);
    let mut proposals = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while states.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 1000,
            "covered cells must be reachable by sampling"
        );
        let state = safe.sample(&mut rng);
        let proposed: Vec<f64> = (0..env.action_dim())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let predicted = env.step_deterministic(&state, &proposed);
        if table.coverage(&predicted) == Some(true) {
            states.push(state);
            proposals.push(proposed);
        }
    }
    (states, proposals)
}

/// Times `f` over `rounds` passes, returning seconds per pass.
fn time_per_pass(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..rounds {
        f();
    }
    start.elapsed().as_secs_f64() / rounds as f64
}

struct Throughput {
    table_per_sec: f64,
    exact_per_sec: f64,
    batch_table_per_sec: f64,
    batch_exact_per_sec: f64,
    build_sec: f64,
    memory_bytes: usize,
    boundary_fraction: f64,
}

/// Measures scalar and batched decide throughput on table-covered states
/// for `shield` (which must carry a table) against its exact path.
fn measure_throughput(
    c: &mut Criterion,
    label: &str,
    env: &EnvironmentContext,
    build: impl Fn() -> Shield,
    config: &TableConfig,
) -> Throughput {
    let start = Instant::now();
    let tabled = build()
        .with_table(config)
        .expect("the safe box grids cleanly");
    let build_sec = start.elapsed().as_secs_f64();
    let exact = build();
    let stats = *tabled.table().unwrap().stats();
    let (states, proposals) = covered_states(env, &tabled, 4096, 5);

    // Conformance before timing: identical decisions on every pair.
    for (state, proposed) in states.iter().zip(proposals.iter()).take(512) {
        assert_eq!(
            tabled.decide(state, proposed),
            exact.decide(state, proposed),
            "table and exact paths must agree before we time them"
        );
    }

    let mut group = c.benchmark_group(format!("decide_table/{label}"));
    group.sample_size(10);
    group.bench_function("table", |b| {
        b.iter(|| {
            for (state, proposed) in states.iter().zip(proposals.iter()) {
                black_box(tabled.decide(black_box(state), black_box(proposed)));
            }
        })
    });
    group.bench_function("exact", |b| {
        b.iter(|| {
            for (state, proposed) in states.iter().zip(proposals.iter()) {
                black_box(exact.decide(black_box(state), black_box(proposed)));
            }
        })
    });
    group.finish();

    let per_pass = states.len() as f64;
    let table_scalar = time_per_pass(10, || {
        for (state, proposed) in states.iter().zip(proposals.iter()) {
            black_box(tabled.decide(state, proposed));
        }
    });
    let exact_scalar = time_per_pass(10, || {
        for (state, proposed) in states.iter().zip(proposals.iter()) {
            black_box(exact.decide(state, proposed));
        }
    });
    let table_batch = time_per_pass(10, || {
        black_box(tabled.decide_batch(&states, &proposals));
    });
    let exact_batch = time_per_pass(10, || {
        black_box(exact.decide_batch(&states, &proposals));
    });
    let numbers = Throughput {
        table_per_sec: per_pass / table_scalar,
        exact_per_sec: per_pass / exact_scalar,
        batch_table_per_sec: per_pass / table_batch,
        batch_exact_per_sec: per_pass / exact_batch,
        build_sec,
        memory_bytes: stats.memory_bytes,
        boundary_fraction: stats.boundary_fraction(),
    };
    println!(
        "  -> {label}: table {:.0}/s vs exact {:.0}/s ({:.2}x scalar, {:.2}x batched); \
         build {:.1} ms, {} cells ({:.1} KiB), {:.2}% boundary",
        numbers.table_per_sec,
        numbers.exact_per_sec,
        numbers.table_per_sec / numbers.exact_per_sec,
        numbers.batch_table_per_sec / numbers.batch_exact_per_sec,
        build_sec * 1e3,
        stats.cells,
        stats.memory_bytes as f64 / 1024.0,
        numbers.boundary_fraction * 100.0
    );
    numbers
}

/// Per-benchmark build cost at a dimension-bounded resolution (the largest
/// near-uniform grid under 4096 cells): build time, memory, and how much of
/// the grid the interval certification left to the exact path.
fn benchmark_sweep() -> Vec<(String, f64, usize, f64, f64)> {
    let mut rows = Vec::new();
    for spec in all_benchmarks() {
        let name = spec.name().to_string();
        let env = spec.into_env();
        let dim = env.state_dim();
        let mut base = 1usize;
        while (base + 1)
            .checked_pow(dim as u32)
            .is_some_and(|c| c <= 4096)
        {
            base += 1;
        }
        let safe = env.safety().safe_box();
        let radii: Vec<f64> = safe
            .lows()
            .iter()
            .zip(safe.highs().iter())
            .map(|(lo, hi)| 0.25 * (hi - lo))
            .collect();
        let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
        let program = PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
        let shield = Shield::new(
            env.clone(),
            vec![ShieldPiece::new(
                program,
                fixtures::ellipsoid_certificate(&env, &radii),
            )],
        );
        let start = Instant::now();
        let tabled = shield
            .with_table(&TableConfig::uniform(base))
            .expect("benchmark safe boxes grid cleanly");
        let build_sec = start.elapsed().as_secs_f64();
        let stats = tabled.table().unwrap().stats();
        let certified = (stats.covered + stats.uncovered) as f64 / stats.cells as f64;
        println!(
            "  -> {name:<20} {dim}-D res {base:>3}: build {:>7.2} ms, {:>7} cells, \
             {:>6.1} KiB, {:.1}% certified",
            build_sec * 1e3,
            stats.cells,
            stats.memory_bytes as f64 / 1024.0,
            certified * 100.0
        );
        rows.push((
            name,
            build_sec,
            stats.memory_bytes,
            stats.boundary_fraction(),
            certified,
        ));
    }
    rows
}

fn write_results(
    headline: &Throughput,
    single: &Throughput,
    sweep: &[(String, f64, usize, f64, f64)],
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    let throughput_json = |t: &Throughput| {
        format!(
            "{{\n      \"table_decide_per_sec\": {:.0},\n      \"exact_decide_per_sec\": {:.0},\n      \"speedup\": {:.2},\n      \"batch_table_per_sec\": {:.0},\n      \"batch_exact_per_sec\": {:.0},\n      \"batch_speedup\": {:.2},\n      \"build_sec\": {:.6e},\n      \"memory_bytes\": {},\n      \"boundary_fraction\": {:.4}\n    }}",
            t.table_per_sec,
            t.exact_per_sec,
            t.table_per_sec / t.exact_per_sec,
            t.batch_table_per_sec,
            t.batch_exact_per_sec,
            t.batch_table_per_sec / t.batch_exact_per_sec,
            t.build_sec,
            t.memory_bytes,
            t.boundary_fraction,
        )
    };
    let sweep_rows: Vec<String> = sweep
        .iter()
        .map(|(name, build_sec, memory, boundary, certified)| {
            format!(
                "      \"{name}\": {{\"build_ms\": {:.3}, \"memory_kib\": {:.1}, \"boundary_fraction\": {:.4}, \"certified_fraction\": {:.4}}}",
                build_sec * 1e3,
                *memory as f64 / 1024.0,
                boundary,
                certified,
            )
        })
        .collect();
    let section = format!
    (
        "{{\n    \"note\": \"Throughput on table-covered states (predicted successor in a certified-covered cell), 4096 states; both paths pay the dynamics step. The headline shield is certificate-heavy (16 pieces, degree-6 certificates, 128x128 grid) — the geometry the table exists for; single_piece_pendulum is the honest small case (one degree-2 certificate, little work to skip). The sweep records deploy-time build cost per Table 1 benchmark at the largest near-uniform grid under 4096 cells.\",\n    \"headline_16piece_deg6\": {},\n    \"single_piece_pendulum\": {},\n    \"benchmark_builds\": {{\n{}\n    }}\n  }}",
        throughput_json(headline),
        throughput_json(single),
        sweep_rows.join(",\n"),
    );
    vrl_bench::upsert_bench_sections(path, &[("decide_table", section)])
        .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");
}

fn bench_all(c: &mut Criterion) {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let headline = measure_throughput(
        c,
        "headline_16piece_deg6",
        &env,
        || headline_shield(&env),
        &TableConfig::uniform(128),
    );
    assert!(
        headline.table_per_sec / headline.exact_per_sec >= 5.0,
        "acceptance: table-covered decides must be at least 5x the exact path \
         (got {:.2}x)",
        headline.table_per_sec / headline.exact_per_sec
    );
    let single = measure_throughput(
        c,
        "single_piece_pendulum",
        &env,
        || fixtures::ellipsoid_shield(&env, &fixtures::PENDULUM_GAINS, &fixtures::PENDULUM_RADII),
        &TableConfig::uniform(128),
    );
    let sweep = benchmark_sweep();
    write_results(&headline, &single, &sweep);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
