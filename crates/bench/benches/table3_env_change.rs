//! Table 3 bench: re-synthesizing a shield for a changed environment versus
//! synthesizing one from scratch (the point of Table 3 is that adapting the
//! shield is much cheaper than retraining the network).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::cartpole::{cartpole_env, cartpole_longer_pole, DEFAULT_POLE_LENGTH};

fn bench_env_change(c: &mut Criterion) {
    let _ = cartpole_env(DEFAULT_POLE_LENGTH);
    let changed = cartpole_longer_pole().into_env();
    // The oracle trained in the original environment, reused unchanged.
    let oracle = ClosurePolicy::new(1, |s: &[f64]| {
        vec![1.2 * s[0] + 3.9 * s[1] + 79.0 * s[2] + 15.0 * s[3]]
    });
    let config = CegisConfig {
        distill: DistillConfig::smoke_test(),
        verification: VerificationConfig::with_degree(2),
        ..CegisConfig::smoke_test()
    };
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("resynthesize_shield_longer_pole", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            synthesize_shield(&changed, &oracle, &config, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_env_change);
criterion_main!(benches);
