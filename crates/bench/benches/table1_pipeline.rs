//! Table 1 driver bench: times the end-to-end pipeline stages (oracle
//! distillation, verification, shielded simulation) on a representative
//! benchmark, which is what the Training / Synthesis / Overhead columns of
//! Table 1 measure.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::quadcopter::quadcopter_env;

fn bench_table1_pipeline(c: &mut Criterion) {
    let env = quadcopter_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-3.0 * s[0] - 2.5 * s[1]]);
    let config = CegisConfig {
        distill: DistillConfig::smoke_test(),
        verification: VerificationConfig::with_degree(2),
        ..CegisConfig::smoke_test()
    };
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("quadcopter_shield_synthesis", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            synthesize_shield(&env, &oracle, &config, &mut rng).expect("shieldable")
        })
    });
    let mut rng = SmallRng::seed_from_u64(2);
    let (shield, _) = synthesize_shield(&env, &oracle, &config, &mut rng).unwrap();
    group.bench_function("quadcopter_shielded_episode", |b| {
        b.iter(|| {
            let shielded = vrl::shield::ShieldedPolicy::new(&shield, &oracle);
            env.rollout(&shielded, &[0.3, 0.3], 1000, &mut rng)
        })
    });
    group.bench_function("quadcopter_unshielded_episode", |b| {
        b.iter(|| env.rollout(&oracle, &[0.3, 0.3], 1000, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_table1_pipeline);
criterion_main!(benches);
