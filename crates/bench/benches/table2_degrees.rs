//! Table 2 bench: verification time as a function of the invariant degree
//! (2 / 4 / 6) on the Duffing oscillator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vrl::poly::Polynomial;
use vrl::verify::{verify_nonlinear, VerificationConfig};
use vrl_benchmarks::duffing::duffing_env;

fn bench_invariant_degrees(c: &mut Criterion) {
    let env = duffing_env().with_init(vrl::dynamics::BoxRegion::symmetric(&[1.0, 1.0]));
    let program = vec![Polynomial::linear(&[0.39, -1.41], 0.0)];
    let mut group = c.benchmark_group("table2_verification_time");
    group.sample_size(10);
    for degree in [2u32, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(degree),
            &degree,
            |b, &degree| {
                let config = VerificationConfig::with_degree(degree);
                b.iter(|| verify_nonlinear(&env, &program, env.init(), &config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_invariant_degrees);
criterion_main!(benches);
