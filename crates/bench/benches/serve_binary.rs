//! Binary-frame serving throughput: the same loopback workload as
//! `serve_http` (pendulum deployment, `[240, 200]` oracle, keep-alive
//! connection) driven over the length-prefixed frame codec, with the JSON
//! codec and the in-process path measured in the same run so the codec
//! overhead reads directly off `BENCH_eval.json`.
//!
//! The binary client loop is allocation-free: the request frame is encoded
//! once, `MiniClient::post_reusing` reuses one response buffer across
//! requests, and the server side decodes into its per-connection arena.
//! Before any timing, the batched binary response is decoded and compared
//! bit-for-bit against the in-process decisions — a throughput number for a
//! codec that diverges would be meaningless.
//!
//! The run also settles the carried-over `RwLock<Arc<ActiveArtifact>>`
//! hot-path question with data: `ShieldServer::generation` performs exactly
//! the serving path's lock-and-clone (registry lookup, shared `RwLock`
//! read, `Arc` clone), so its per-call latency — alone and with four
//! threads hammering the same lock — is the cost the lock adds to every
//! decide.  Both numbers land in `BENCH_eval.json` under `serve_binary`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::{Arc, Barrier};
use std::time::Instant;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::frame;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::{fixtures, ShieldServer};

const BATCH: usize = 512;

/// Mean nanoseconds per registry-lookup + `RwLock` read + `Arc` clone
/// (`ShieldServer::generation`), averaged over `threads` threads doing the
/// same concurrently.
fn lock_clone_ns(server: &Arc<ShieldServer>, threads: usize) -> f64 {
    const ITERS: usize = 200_000;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let server = Arc::clone(server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                for _ in 0..ITERS {
                    std::hint::black_box(server.generation("pendulum").expect("deployed"));
                }
                start.elapsed().as_nanos() as f64 / ITERS as f64
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("probe thread"))
        .sum::<f64>()
        / threads as f64
}

fn bench_serve_binary(c: &mut Criterion) {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[240, 200],
        17,
    )
    .expect("dimensions agree");
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("pendulum", artifact).expect("deploys");
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&server) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds");
    let mut client = MiniClient::connect(frontend.local_addr()).expect("client connects");
    let path = "/v1/deployments/pendulum/decide";

    let mut rng = SmallRng::seed_from_u64(23);
    let safe = env.safety().safe_box().clone();
    let states: Vec<Vec<f64>> = (0..BATCH).map(|_| safe.sample(&mut rng)).collect();
    let batch_frame = frame::encode_decide_request(&states, true);
    let single_frame = frame::encode_decide_request(std::slice::from_ref(&states[0]), false);
    let batch_json = format!(
        "{{\"states\": [{}]}}",
        states
            .iter()
            .map(|s| format!("[{}, {}]", s[0], s[1]))
            .collect::<Vec<_>>()
            .join(",")
    );
    let single_json = format!("{{\"state\": [{}, {}]}}", states[0][0], states[0][1]);
    let mut out = Vec::new();

    // Correctness gate before any timing: the batched binary response must
    // be bit-identical to the in-process decisions.
    let reference = server.decide_batch("pendulum", &states).expect("serves");
    let (status, binary) = client
        .post_reusing(path, frame::CONTENT_TYPE_FRAME, &batch_frame, &mut out)
        .expect("request succeeds");
    assert_eq!(status, 200);
    assert!(binary, "binary requests get binary responses");
    let decisions = frame::decode_decide_response(&out).expect("frame decodes");
    assert_eq!(decisions.len(), reference.len());
    for (wire, local) in decisions.iter().zip(reference.iter()) {
        assert_eq!(wire.intervened, local.intervened);
        for (a, b) in wire.action.iter().zip(local.action.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "codec must not perturb decisions");
        }
    }

    // Criterion rows: per-request latency of both binary request shapes.
    let mut group = c.benchmark_group("serve_binary/pendulum");
    group.sample_size(10);
    group.bench_function("single_state_frame", |b| {
        b.iter(|| {
            let (status, _) = client
                .post_reusing(path, frame::CONTENT_TYPE_FRAME, &single_frame, &mut out)
                .expect("request succeeds");
            assert_eq!(status, 200);
            out.len()
        })
    });
    group.bench_function(format!("batch_{BATCH}_frame"), |b| {
        b.iter(|| {
            let (status, _) = client
                .post_reusing(path, frame::CONTENT_TYPE_FRAME, &batch_frame, &mut out)
                .expect("request succeeds");
            assert_eq!(status, 200);
            out.len()
        })
    });
    group.finish();

    // Absolute throughput, sustained over ~2 seconds of wall clock each.
    let timed = |f: &mut dyn FnMut() -> usize| -> f64 {
        let start = Instant::now();
        let mut decisions = 0u64;
        while start.elapsed().as_secs_f64() < 2.0 {
            decisions += f() as u64;
        }
        decisions as f64 / start.elapsed().as_secs_f64()
    };
    let mut post_binary = |body: &[u8], decisions: usize, out: &mut Vec<u8>| {
        let (status, _) = client
            .post_reusing(path, frame::CONTENT_TYPE_FRAME, body, out)
            .expect("request succeeds");
        assert_eq!(status, 200);
        decisions
    };
    let binary_single = timed(&mut || post_binary(&single_frame, 1, &mut out));
    let binary_batch = timed(&mut || post_binary(&batch_frame, BATCH, &mut out));
    let json_single = timed(&mut || {
        let response = client
            .request("POST", path, single_json.as_bytes())
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        1
    });
    let json_batch = timed(&mut || {
        let response = client
            .request("POST", path, batch_json.as_bytes())
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        BATCH
    });
    // In-process baselines on the same machine in the same run.
    let inprocess_single = timed(&mut || {
        server.decide("pendulum", &states[0]).expect("serves");
        1
    });
    let inprocess_batch = timed(&mut || {
        server
            .decide_batch("pendulum", &states)
            .expect("serves")
            .len()
    });
    println!(
        "  -> binary frame serving (pendulum, keep-alive loopback): \
         {binary_single:.0} single-state requests/sec ({:.2}x of the in-process {inprocess_single:.0}/sec), \
         {binary_batch:.0} decisions/sec batched x{BATCH} ({:.1}% of the in-process {inprocess_batch:.0}/sec); \
         JSON on the same connection: {json_single:.0} single, {json_batch:.0} batched",
        inprocess_single / binary_single,
        100.0 * binary_batch / inprocess_batch,
    );

    // The RwLock question: per-decide lock-and-clone cost, alone and with
    // four threads sharing the lock.
    let lock_ns_1 = lock_clone_ns(&server, 1);
    let lock_ns_4 = lock_clone_ns(&server, 4);
    println!(
        "  -> RwLock<Arc> snapshot: {lock_ns_1:.0} ns/clone uncontended, \
         {lock_ns_4:.0} ns/clone with 4 reader threads \
         ({:.0} ns per single-state decide for scale)",
        1e9 / inprocess_single
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    vrl_bench::upsert_bench_sections(
        path,
        &[(
            "serve_binary",
            format!(
                "{{\n    \"batch_size\": {BATCH},\n    \"binary_single_requests_per_sec\": {binary_single:.0},\n    \"binary_batch_decisions_per_sec\": {binary_batch:.0},\n    \"json_single_requests_per_sec\": {json_single:.0},\n    \"json_batch_decisions_per_sec\": {json_batch:.0},\n    \"inprocess_single_decisions_per_sec\": {inprocess_single:.0},\n    \"inprocess_batch_decisions_per_sec\": {inprocess_batch:.0},\n    \"binary_single_vs_inprocess\": {:.2},\n    \"binary_batch_efficiency\": {:.3},\n    \"rwlock_arc_clone_ns_uncontended\": {lock_ns_1:.0},\n    \"rwlock_arc_clone_ns_4_threads\": {lock_ns_4:.0}\n  }}",
                inprocess_single / binary_single,
                binary_batch / inprocess_batch,
            ),
        )],
    )
    .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");

    frontend.shutdown();
}

criterion_group!(benches, bench_serve_binary);
criterion_main!(benches);
