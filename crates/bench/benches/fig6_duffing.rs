//! Fig. 6 bench: the CEGIS loop on the Duffing oscillator of Example 4.3.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::duffing::duffing_env;

fn bench_duffing_cegis(c: &mut Criterion) {
    let env = duffing_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![0.5 * s[0] - 2.0 * s[1]]);
    let config = CegisConfig {
        distill: DistillConfig {
            iterations: 20,
            ..DistillConfig::smoke_test()
        },
        verification: VerificationConfig::with_degree(4),
        max_pieces: 4,
        max_shrink_steps: 4,
        coverage_samples: 200,
        ..CegisConfig::smoke_test()
    };
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("duffing_cegis", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(9);
            synthesize_shield(&env, &oracle, &config, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_duffing_cegis);
criterion_main!(benches);
