//! Networked serving throughput: decisions/sec through the std-only HTTP
//! front-end over a loopback socket.
//!
//! The workload mirrors `serve_throughput` (pendulum deployment, `[240,
//! 200]` oracle, states sampled from the safe region) but pays the full
//! wire cost per request: JSON encode on the client, HTTP framing both
//! ways, JSON parse + decide + JSON encode on the server.  Requests ride a
//! keep-alive connection, one batch of states per `POST`, so the
//! lane-batched `decide_batch` kernels amortize the HTTP overhead exactly
//! as a production client would.  The headline numbers (single-state
//! requests/sec and batched decisions/sec, plus the in-process baseline
//! measured on the same machine in the same run) merge into
//! `BENCH_eval.json` under `serve_http` without disturbing the sections the
//! other benches own.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::{fixtures, ShieldServer};

const BATCH: usize = 512;

fn bench_serve_http(c: &mut Criterion) {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[240, 200],
        17,
    )
    .expect("dimensions agree");
    let server = Arc::new(ShieldServer::with_workers(1));
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&server) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds");
    let mut client = MiniClient::connect(frontend.local_addr()).expect("client connects");
    let put = client
        .request("PUT", "/v1/deployments/pendulum", &artifact.to_bytes())
        .expect("PUT succeeds");
    assert_eq!(put.status, 200, "{}", put.text());

    let mut rng = SmallRng::seed_from_u64(23);
    let safe = env.safety().safe_box().clone();
    let states: Vec<Vec<f64>> = (0..BATCH).map(|_| safe.sample(&mut rng)).collect();
    let batch_body = format!(
        "{{\"states\": [{}]}}",
        states
            .iter()
            .map(|s| format!("[{}, {}]", s[0], s[1]))
            .collect::<Vec<_>>()
            .join(",")
    );
    let single_body = format!("{{\"state\": [{}, {}]}}", states[0][0], states[0][1]);

    // Criterion rows: per-request latency of both request shapes.
    let mut group = c.benchmark_group("serve_http/pendulum");
    group.sample_size(10);
    group.bench_function("single_state_request", |b| {
        b.iter(|| {
            let response = client
                .request(
                    "POST",
                    "/v1/deployments/pendulum/decide",
                    single_body.as_bytes(),
                )
                .expect("request succeeds");
            assert_eq!(response.status, 200);
            response.body.len()
        })
    });
    group.bench_function(format!("batch_{BATCH}_request"), |b| {
        b.iter(|| {
            let response = client
                .request(
                    "POST",
                    "/v1/deployments/pendulum/decide",
                    batch_body.as_bytes(),
                )
                .expect("request succeeds");
            assert_eq!(response.status, 200);
            response.body.len()
        })
    });
    group.finish();

    // Absolute throughput for BENCH_eval.json: sustained over ~2 seconds
    // of wall clock each.
    let timed = |f: &mut dyn FnMut() -> usize| -> (f64, u64) {
        let start = Instant::now();
        let mut decisions = 0u64;
        let mut rounds = 0u64;
        while start.elapsed().as_secs_f64() < 2.0 {
            decisions += f() as u64;
            rounds += 1;
        }
        (decisions as f64 / start.elapsed().as_secs_f64(), rounds)
    };
    let (single_per_sec, _) = timed(&mut || {
        let response = client
            .request(
                "POST",
                "/v1/deployments/pendulum/decide",
                single_body.as_bytes(),
            )
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        1
    });
    let (batch_per_sec, _) = timed(&mut || {
        let response = client
            .request(
                "POST",
                "/v1/deployments/pendulum/decide",
                batch_body.as_bytes(),
            )
            .expect("request succeeds");
        assert_eq!(response.status, 200);
        BATCH
    });
    // In-process baseline on the same machine in the same run, so the wire
    // overhead reads directly off the file.
    let (inprocess_per_sec, _) = timed(&mut || {
        let decisions = server.decide_batch("pendulum", &states).expect("serves");
        decisions.len()
    });
    println!(
        "  -> HTTP serving (pendulum, keep-alive loopback): {single_per_sec:.0} single-state requests/sec, \
         {batch_per_sec:.0} decisions/sec batched x{BATCH} ({:.0}% of the in-process {inprocess_per_sec:.0}/sec)",
        100.0 * batch_per_sec / inprocess_per_sec
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    vrl_bench::upsert_bench_sections(
        path,
        &[(
            "serve_http",
            format!(
                "{{\n    \"batch_size\": {BATCH},\n    \"single_state_requests_per_sec\": {single_per_sec:.0},\n    \"batch_decisions_per_sec\": {batch_per_sec:.0},\n    \"inprocess_decisions_per_sec\": {inprocess_per_sec:.0},\n    \"wire_efficiency\": {:.2}\n  }}",
                batch_per_sec / inprocess_per_sec,
            ),
        )],
    )
    .expect("BENCH_eval.json must be writable");
    println!("  -> wrote {path}");

    frontend.shutdown();
}

criterion_group!(benches, bench_serve_http);
criterion_main!(benches);
