//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation (Sec. 5).
//!
//! The binaries in `src/bin/` print the tables; the Criterion benches in
//! `benches/` time the individual pipeline stages.  Because the original
//! evaluation runs 1000 episodes of 5000 steps per benchmark on a desktop
//! machine, the harness defaults to a scaled-down budget and accepts
//! `--full` to reproduce the paper-scale workload.

use vrl::pipeline::{OracleTrainer, PipelineConfig};
use vrl::rl::ArsConfig;
use vrl::shield::CegisConfig;
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::BenchmarkSpec;

/// How much effort the harness spends per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down budgets so the whole table regenerates in minutes.
    Quick,
    /// Paper-scale budgets (1000 episodes of 5000 steps, larger networks).
    Full,
}

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Effort level.
    pub effort: Effort,
    /// Restrict the run to a single benchmark by name.
    pub only: Option<String>,
    /// Number of evaluation episodes per benchmark.
    pub episodes: usize,
    /// Steps per evaluation episode.
    pub steps: usize,
}

impl HarnessOptions {
    /// Parses options from command-line arguments (`--full`, `--only NAME`,
    /// `--episodes N`, `--steps N`).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut options = HarnessOptions {
            effort: Effort::Quick,
            only: None,
            episodes: 20,
            steps: 1000,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => {
                    options.effort = Effort::Full;
                    options.episodes = 1000;
                    options.steps = 5000;
                }
                "--only" => options.only = args.next(),
                "--episodes" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.episodes = v;
                    }
                }
                "--steps" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.steps = v;
                    }
                }
                _ => {}
            }
        }
        options
    }
}

/// Builds the pipeline configuration the harness uses for a benchmark at the
/// requested effort level.
pub fn pipeline_config_for(
    spec: &BenchmarkSpec,
    effort: Effort,
    episodes: usize,
    steps: usize,
) -> PipelineConfig {
    let (hidden, ars, distill) = match effort {
        Effort::Quick => (
            vec![32, 32],
            ArsConfig {
                iterations: 40,
                directions: 6,
                top_directions: 3,
                step_size: 0.05,
                noise: 0.05,
                rollouts_per_evaluation: 1,
                horizon: 400,
            },
            DistillConfig {
                iterations: 80,
                trajectories: 2,
                horizon: 250,
                ..DistillConfig::default()
            },
        ),
        Effort::Full => (
            spec.hidden_layers().to_vec(),
            ArsConfig {
                iterations: 300,
                directions: 16,
                top_directions: 8,
                step_size: 0.02,
                noise: 0.03,
                rollouts_per_evaluation: 2,
                horizon: 1000,
            },
            DistillConfig::default(),
        ),
    };
    let cegis = CegisConfig {
        distill,
        verification: VerificationConfig::with_degree(spec.invariant_degree()),
        ..CegisConfig::default()
    };
    PipelineConfig {
        hidden_layers: hidden,
        trainer: OracleTrainer::Ars(ars),
        cegis,
        evaluation_episodes: episodes,
        evaluation_steps: steps,
        seed: 2019,
    }
}

/// Prints the Table 1 header row.
pub fn print_table1_header() {
    println!(
        "{:<22} {:>4} {:>10} {:>8} {:>5} {:>11} {:>10} {:>13} {:>9} {:>9}",
        "Benchmark",
        "Vars",
        "Training",
        "Failures",
        "Size",
        "Synthesis",
        "Overhead",
        "Interventions",
        "NN",
        "Program"
    );
    println!("{}", "-".repeat(112));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_benchmarks::benchmark_by_name;

    #[test]
    fn option_parsing_handles_flags() {
        let opts = HarnessOptions::from_args(
            ["--only", "pendulum", "--episodes", "7", "--steps", "123"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.only.as_deref(), Some("pendulum"));
        assert_eq!(opts.episodes, 7);
        assert_eq!(opts.steps, 123);
        assert_eq!(opts.effort, Effort::Quick);
        let full = HarnessOptions::from_args(["--full"].iter().map(|s| s.to_string()));
        assert_eq!(full.effort, Effort::Full);
        assert_eq!(full.episodes, 1000);
        assert_eq!(full.steps, 5000);
    }

    #[test]
    fn quick_and_full_configs_differ_in_budget() {
        let spec = benchmark_by_name("pendulum").unwrap();
        let quick = pipeline_config_for(&spec, Effort::Quick, 10, 500);
        let full = pipeline_config_for(&spec, Effort::Full, 1000, 5000);
        assert!(
            quick.hidden_layers.iter().sum::<usize>() < full.hidden_layers.iter().sum::<usize>()
        );
        assert_eq!(quick.cegis.verification.invariant_degree, 4);
        assert_eq!(full.evaluation_episodes, 1000);
    }
}
