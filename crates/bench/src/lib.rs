//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation (Sec. 5).
//!
//! The binaries in `src/bin/` print the tables; the Criterion benches in
//! `benches/` time the individual pipeline stages.  Because the original
//! evaluation runs 1000 episodes of 5000 steps per benchmark on a desktop
//! machine, the harness defaults to a scaled-down budget and accepts
//! `--full` to reproduce the paper-scale workload.
//!
//! Beyond the paper tables, the serving-side benches (`eval_kernels`,
//! `serve_throughput`, `serve_http`) record their headline numbers into
//! `BENCH_eval.json` at the workspace root through
//! [`upsert_bench_sections`], which merges each bench's sections into the
//! file without clobbering the sections other benches own.
//!
//! # Example
//!
//! ```
//! use vrl_bench::{pipeline_config_for, Effort};
//! use vrl_benchmarks::benchmark_by_name;
//!
//! let spec = benchmark_by_name("pendulum").expect("Table 1 benchmark");
//! let config = pipeline_config_for(&spec, Effort::Quick, 10, 500);
//! assert_eq!(config.cegis.verification.invariant_degree, 4);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::path::Path;
use vrl::pipeline::{OracleTrainer, PipelineConfig};
use vrl::rl::ArsConfig;
use vrl::shield::CegisConfig;
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::BenchmarkSpec;

/// How much effort the harness spends per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down budgets so the whole table regenerates in minutes.
    Quick,
    /// Paper-scale budgets (1000 episodes of 5000 steps, larger networks).
    Full,
}

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Effort level.
    pub effort: Effort,
    /// Restrict the run to a single benchmark by name.
    pub only: Option<String>,
    /// Number of evaluation episodes per benchmark.
    pub episodes: usize,
    /// Steps per evaluation episode.
    pub steps: usize,
}

impl HarnessOptions {
    /// Parses options from command-line arguments (`--full`, `--only NAME`,
    /// `--episodes N`, `--steps N`).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut options = HarnessOptions {
            effort: Effort::Quick,
            only: None,
            episodes: 20,
            steps: 1000,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => {
                    options.effort = Effort::Full;
                    options.episodes = 1000;
                    options.steps = 5000;
                }
                "--only" => options.only = args.next(),
                "--episodes" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.episodes = v;
                    }
                }
                "--steps" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        options.steps = v;
                    }
                }
                _ => {}
            }
        }
        options
    }
}

/// Builds the pipeline configuration the harness uses for a benchmark at the
/// requested effort level.
pub fn pipeline_config_for(
    spec: &BenchmarkSpec,
    effort: Effort,
    episodes: usize,
    steps: usize,
) -> PipelineConfig {
    let (hidden, ars, distill) = match effort {
        Effort::Quick => (
            vec![32, 32],
            ArsConfig {
                iterations: 40,
                directions: 6,
                top_directions: 3,
                step_size: 0.05,
                noise: 0.05,
                rollouts_per_evaluation: 1,
                horizon: 400,
            },
            DistillConfig {
                iterations: 80,
                trajectories: 2,
                horizon: 250,
                ..DistillConfig::default()
            },
        ),
        Effort::Full => (
            spec.hidden_layers().to_vec(),
            ArsConfig {
                iterations: 300,
                directions: 16,
                top_directions: 8,
                step_size: 0.02,
                noise: 0.03,
                rollouts_per_evaluation: 2,
                horizon: 1000,
            },
            DistillConfig::default(),
        ),
    };
    let cegis = CegisConfig {
        distill,
        verification: VerificationConfig::with_degree(spec.invariant_degree()),
        ..CegisConfig::default()
    };
    PipelineConfig {
        hidden_layers: hidden,
        trainer: OracleTrainer::Ars(ars),
        cegis,
        evaluation_episodes: episodes,
        evaluation_steps: steps,
        seed: 2019,
    }
}

/// Merges `sections` into the JSON object stored at `path`, preserving
/// every top-level section the caller does not mention.
///
/// `BENCH_eval.json` is written by more than one bench (`eval_kernels`
/// owns the kernel and branch-and-bound sections, `serve_http` the HTTP
/// serving section), so no bench may simply overwrite the file.  This
/// helper reads the existing object, replaces or appends the given
/// `(key, value)` pairs — `value` is raw, pre-rendered JSON text — and
/// rewrites the file with existing sections first (in file order) and new
/// sections appended.  A missing or unparseable file starts fresh.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn upsert_bench_sections(
    path: impl AsRef<Path>,
    sections: &[(&str, String)],
) -> std::io::Result<()> {
    let path = path.as_ref();
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut entries = parse_top_level_sections(&existing).unwrap_or_default();
    for (key, value) in sections {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value.clone(),
            None => entries.push((key.to_string(), value.clone())),
        }
    }
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits a JSON object's source text into `(key, raw value text)` pairs,
/// without interpreting the values.  Handles nested objects/arrays and
/// strings with escapes; returns `None` when the input is not a single
/// well-formed-enough object (the caller then starts a fresh file).
fn parse_top_level_sections(source: &str) -> Option<Vec<(String, String)>> {
    let bytes = source.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    pos += 1;
    let mut entries = Vec::new();
    loop {
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b'}') => return Some(entries),
            Some(b'"') => {}
            _ => return None,
        }
        // Key (no escapes in bench section names).
        let key_start = pos + 1;
        let key_len = bytes[key_start..].iter().position(|&b| b == b'"')?;
        let key = source[key_start..key_start + key_len].to_string();
        pos = key_start + key_len + 1;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos += 1;
        skip_ws(&mut pos);
        // Value: scan to the ',' or '}' at nesting depth zero.
        let value_start = pos;
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        let value_end = loop {
            let &b = bytes.get(pos)?;
            if in_string {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_string = false;
                }
            } else {
                match b {
                    b'"' => in_string = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b',' | b'}' if depth == 0 => break pos,
                    _ => {}
                }
            }
            pos += 1;
        };
        entries.push((key, source[value_start..value_end].trim_end().to_string()));
        if bytes[value_end] == b',' {
            pos = value_end + 1;
        } else {
            // The closing '}' of the whole object.
            return Some(entries);
        }
    }
}

/// Prints the Table 1 header row.
pub fn print_table1_header() {
    println!(
        "{:<22} {:>4} {:>10} {:>8} {:>5} {:>11} {:>10} {:>13} {:>9} {:>9}",
        "Benchmark",
        "Vars",
        "Training",
        "Failures",
        "Size",
        "Synthesis",
        "Overhead",
        "Interventions",
        "NN",
        "Program"
    );
    println!("{}", "-".repeat(112));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_benchmarks::benchmark_by_name;

    #[test]
    fn option_parsing_handles_flags() {
        let opts = HarnessOptions::from_args(
            ["--only", "pendulum", "--episodes", "7", "--steps", "123"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.only.as_deref(), Some("pendulum"));
        assert_eq!(opts.episodes, 7);
        assert_eq!(opts.steps, 123);
        assert_eq!(opts.effort, Effort::Quick);
        let full = HarnessOptions::from_args(["--full"].iter().map(|s| s.to_string()));
        assert_eq!(full.effort, Effort::Full);
        assert_eq!(full.episodes, 1000);
        assert_eq!(full.steps, 5000);
    }

    #[test]
    fn upsert_preserves_sections_other_benches_own() {
        let dir = std::env::temp_dir().join("vrl-bench-upsert-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        // A fresh file gets created.
        upsert_bench_sections(
            &path,
            &[
                ("description", "\"kernel numbers\"".to_string()),
                (
                    "point_eval",
                    "{\n    \"reference_sec\": 1.5e-3,\n    \"note\": \"a, b }] text\"\n  }"
                        .to_string(),
                ),
            ],
        )
        .unwrap();
        // A different bench merges its own section in.
        upsert_bench_sections(
            &path,
            &[(
                "serve_http",
                "{\n    \"decisions_per_sec\": 50000\n  }".to_string(),
            )],
        )
        .unwrap();
        // The first bench regenerates: its sections update, serve_http
        // survives.
        upsert_bench_sections(&path, &[("description", "\"updated\"".to_string())]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"description\": \"updated\""), "{text}");
        assert!(text.contains("\"serve_http\""), "{text}");
        assert!(text.contains("\"a, b }] text\""), "{text}");
        let sections = parse_top_level_sections(&text).unwrap();
        assert_eq!(
            sections.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["description", "point_eval", "serve_http"]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn upsert_round_trips_the_real_bench_file_shape() {
        // The actual BENCH_eval.json shape (nested objects, scientific
        // notation, a long description with escaped quotes) must survive a
        // parse → rewrite cycle byte-for-byte per section.
        let source = "{\n  \"description\": \"x \\\"quoted\\\" — dashes\",\n  \"a\": {\n    \"v\": 1.0e-3\n  },\n  \"b\": {\n    \"n\": 42\n  }\n}\n";
        let sections = parse_top_level_sections(source).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].1, "\"x \\\"quoted\\\" — dashes\"");
        assert_eq!(sections[2].1, "{\n    \"n\": 42\n  }");
        // Garbage starts fresh instead of erroring.
        assert!(parse_top_level_sections("not json").is_none());
        assert!(parse_top_level_sections("").is_none());
        assert!(parse_top_level_sections("{\"unterminated\": ").is_none());
    }

    #[test]
    fn quick_and_full_configs_differ_in_budget() {
        let spec = benchmark_by_name("pendulum").unwrap();
        let quick = pipeline_config_for(&spec, Effort::Quick, 10, 500);
        let full = pipeline_config_for(&spec, Effort::Full, 1000, 5000);
        assert!(
            quick.hidden_layers.iter().sum::<usize>() < full.hidden_layers.iter().sum::<usize>()
        );
        assert_eq!(quick.cegis.verification.invariant_degree, 4);
        assert_eq!(full.evaluation_episodes, 1000);
    }
}
