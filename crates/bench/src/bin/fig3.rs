//! Regenerates the data behind Fig. 3: the inductive invariants inferred for
//! the inverted pendulum under (a) the original 90° safety bounds and (b) the
//! restricted 30° Segway-style bounds, plus the Sec. 2.2 shielding statistics
//! (violations prevented / interventions) for the restricted environment.
//!
//! The invariant sub-level sets are written as CSV grids
//! (`fig3a_invariant.csv`, `fig3b_invariant.csv`) that can be plotted
//! directly.
//!
//! Usage: `fig3 [--full] [--episodes N] [--steps N]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::Write;
use vrl::pipeline::{run_pipeline_with_oracle, train_oracle};
use vrl_bench::{pipeline_config_for, HarnessOptions};
use vrl_benchmarks::pendulum::{pendulum_original, pendulum_restricted};

fn dump_invariant_grid(
    path: &str,
    outcome: &vrl::pipeline::PipelineOutcome,
) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    writeln!(file, "eta,omega,min_invariant_value,covered")?;
    let program = outcome.shield.to_program();
    let bound = 1.6;
    let resolution = 60;
    for i in 0..=resolution {
        for j in 0..=resolution {
            let eta = -bound + 2.0 * bound * i as f64 / resolution as f64;
            let omega = -bound + 2.0 * bound * j as f64 / resolution as f64;
            let value = outcome
                .shield
                .pieces()
                .iter()
                .map(|p| p.invariant().value(&[eta, omega]))
                .fold(f64::INFINITY, f64::min);
            let covered = program.evaluate(&[eta, omega]).is_some();
            writeln!(file, "{eta},{omega},{value},{}", u8::from(covered))?;
        }
    }
    Ok(())
}

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    for (label, spec, csv) in [
        (
            "Fig. 3(a) original 90° bounds",
            pendulum_original(),
            "fig3a_invariant.csv",
        ),
        (
            "Fig. 3(b) restricted 30° bounds",
            pendulum_restricted(),
            "fig3b_invariant.csv",
        ),
    ] {
        let env = spec.env().clone();
        let config = pipeline_config_for(&spec, options.effort, options.episodes, options.steps);
        let (oracle, training_time) = train_oracle(&env, &config);
        match run_pipeline_with_oracle(&env, oracle, training_time, &config) {
            Ok(outcome) => {
                println!("{label}:");
                println!("  pieces: {}", outcome.shield.num_pieces());
                for (i, piece) in outcome.shield.pieces().iter().enumerate() {
                    println!(
                        "  invariant {}: {}",
                        i + 1,
                        piece.invariant().pretty(&env.variable_names())
                    );
                }
                let mut rng = SmallRng::seed_from_u64(11);
                let eval = vrl::shield::evaluate_shielded_system(
                    &env,
                    &outcome.oracle,
                    &outcome.shield,
                    options.episodes,
                    options.steps,
                    &mut rng,
                );
                println!(
                    "  unshielded violations: {} / {} episodes; shielded violations: {}; interventions: {} of {} decisions ({:.5}%)",
                    eval.neural_failures,
                    eval.episodes,
                    eval.shielded_failures,
                    eval.interventions,
                    eval.decisions,
                    100.0 * eval.intervention_rate()
                );
                if let Err(e) = dump_invariant_grid(csv, &outcome) {
                    eprintln!("  (could not write {csv}: {e})");
                } else {
                    println!("  invariant grid written to {csv}");
                }
            }
            Err(err) => println!("{label}: shield synthesis failed: {err}"),
        }
        println!();
    }
}
