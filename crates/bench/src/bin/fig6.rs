//! Regenerates Fig. 6 / Example 4.3: counterexample-guided inductive
//! synthesis on the Duffing oscillator.  The CEGIS loop produces a cascade of
//! linear policies, each with a quartic inductive invariant, whose union
//! covers the initial region S0 = [-2.5, 2.5] x [-2, 2].
//!
//! Usage: `fig6 [--episodes N] [--steps N]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::synth::DistillConfig;
use vrl::verify::VerificationConfig;
use vrl_bench::HarnessOptions;
use vrl_benchmarks::duffing::duffing_env;

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    let env = duffing_env();
    // The oracle for Example 4.3 is "a well-trained neural feedback control
    // policy"; a smooth nonlinear state feedback plays that role here.
    let oracle = ClosurePolicy::new(1, |s: &[f64]| {
        vec![0.6 * s[0] - 2.0 * s[1] - 0.3 * s[0] * s[0] * s[0]]
    });
    let config = CegisConfig {
        program_degree: 1,
        distill: DistillConfig {
            iterations: 120,
            trajectories: 3,
            horizon: 400,
            ..DistillConfig::default()
        },
        verification: VerificationConfig::with_degree(4),
        max_pieces: 6,
        max_shrink_steps: 6,
        coverage_samples: 800,
    };
    let mut rng = SmallRng::seed_from_u64(43);
    match synthesize_shield(&env, &oracle, &config, &mut rng) {
        Ok((shield, report)) => {
            println!("Fig. 6 — CEGIS on the Duffing oscillator");
            println!(
                "  {} verified piece(s) after {} synthesize/verify attempts in {:.1}s\n",
                report.pieces,
                report.attempts,
                report.synthesis_time.as_secs_f64()
            );
            println!("{}", shield.to_program().pretty(&env.variable_names()));
            // Spot-check the paper's two counterexample initial states.
            for s0 in [[-0.46, -0.36], [2.249, 2.0]] {
                println!("  initial state {:?} covered: {}", s0, shield.covers(&s0));
            }
            let mut rng2 = SmallRng::seed_from_u64(44);
            let eval = vrl::shield::evaluate_shielded_system(
                &env,
                &oracle,
                &shield,
                options.episodes,
                options.steps,
                &mut rng2,
            );
            println!(
                "  shielded violations: {} over {} episodes ({} interventions)",
                eval.shielded_failures, eval.episodes, eval.interventions
            );
        }
        Err(err) => println!("Fig. 6: CEGIS failed: {err}"),
    }
}
