//! Regenerates Table 2: the effect of the invariant degree (2 / 4 / 8) on
//! verification time, shield interventions and runtime overhead, for the
//! Pendulum, Self-Driving and 8-Car platoon benchmarks.
//!
//! Usage: `table2 [--full] [--episodes N] [--steps N]`

use std::time::Instant;
use vrl::pipeline::{run_pipeline_with_oracle, train_oracle};
use vrl_bench::{pipeline_config_for, HarnessOptions};
use vrl_benchmarks::benchmark_by_name;

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    let benchmarks = ["pendulum", "self-driving", "car-platoon-8"];
    let degrees = [2u32, 4, 8];
    println!(
        "Table 2 — tuning invariant degrees ({:?} effort)\n",
        options.effort
    );
    println!(
        "{:<16} {:>7} {:>14} {:>14} {:>10}",
        "Benchmark", "Degree", "Verification", "Interventions", "Overhead"
    );
    println!("{}", "-".repeat(66));
    for name in benchmarks {
        let Some(spec) = benchmark_by_name(name) else {
            continue;
        };
        let env = spec.env().clone();
        let base = pipeline_config_for(&spec, options.effort, options.episodes, options.steps);
        // Train the oracle once and reuse it for every degree.
        let (oracle, training_time) = train_oracle(&env, &base);
        for degree in degrees {
            let config = base.clone().with_invariant_degree(degree);
            let start = Instant::now();
            match run_pipeline_with_oracle(&env, oracle.clone(), training_time, &config) {
                Ok(outcome) => {
                    println!(
                        "{:<16} {:>7} {:>13.1}s {:>14} {:>9.2}%",
                        name,
                        degree,
                        outcome.cegis_report.synthesis_time.as_secs_f64(),
                        outcome.evaluation.interventions,
                        outcome.evaluation.overhead_percent
                    );
                }
                Err(err) => {
                    println!(
                        "{:<16} {:>7} {:>13.1}s  TO ({err})",
                        name,
                        degree,
                        start.elapsed().as_secs_f64()
                    );
                }
            }
        }
    }
}
