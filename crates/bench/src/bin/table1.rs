//! Regenerates Table 1: deterministic program synthesis, verification and
//! shielding results for every benchmark.
//!
//! Usage: `table1 [--full] [--only NAME] [--episodes N] [--steps N]`

use std::time::Instant;
use vrl::pipeline::run_pipeline;
use vrl_bench::{pipeline_config_for, print_table1_header, HarnessOptions};
use vrl_benchmarks::all_benchmarks;

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "Table 1 — synthesis, verification and shielding ({:?} effort, {} episodes x {} steps)\n",
        options.effort, options.episodes, options.steps
    );
    print_table1_header();
    for spec in all_benchmarks() {
        if let Some(only) = &options.only {
            if !spec.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        let env = spec.env().clone();
        let config = pipeline_config_for(&spec, options.effort, options.episodes, options.steps);
        let start = Instant::now();
        match run_pipeline(&env, &config) {
            Ok(outcome) => {
                let e = &outcome.evaluation;
                println!(
                    "{:<22} {:>4} {:>9.1}s {:>8} {:>5} {:>10.1}s {:>9.2}% {:>13} {:>9} {:>9}",
                    spec.name(),
                    env.state_dim(),
                    outcome.training_time.as_secs_f64(),
                    e.neural_failures,
                    e.shield_pieces,
                    outcome.cegis_report.synthesis_time.as_secs_f64(),
                    e.overhead_percent,
                    e.interventions,
                    e.shielded_steps_to_steady
                        .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
                    e.program_steps_to_steady
                        .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
                );
                assert_eq!(
                    e.shielded_failures, 0,
                    "a verified shield must prevent every failure"
                );
            }
            Err(err) => {
                println!(
                    "{:<22} {:>4}  [shield synthesis failed after {:.1}s: {err}]",
                    spec.name(),
                    env.state_dim(),
                    start.elapsed().as_secs_f64()
                );
            }
        }
    }
}
