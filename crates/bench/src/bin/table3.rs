//! Regenerates Table 3: handling environment changes.  A controller trained
//! in the original environment is redeployed in a modified one (longer pole,
//! heavier/longer pendulum, added obstacle); only the shield is
//! re-synthesized — the network is *not* retrained.
//!
//! Usage: `table3 [--full] [--episodes N] [--steps N]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::pipeline::{resynthesize_shield_for, train_oracle};
use vrl::shield::evaluate_shielded_system;
use vrl_bench::{pipeline_config_for, HarnessOptions};
use vrl_benchmarks::{benchmark_by_name, environment_change_benchmarks};

fn original_of(variant: &str) -> &'static str {
    if variant.starts_with("cartpole") {
        "cartpole"
    } else if variant.starts_with("pendulum") {
        "pendulum"
    } else {
        "self-driving"
    }
}

fn main() {
    let options = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "Table 3 — handling environment changes ({:?} effort)\n",
        options.effort
    );
    println!(
        "{:<24} {:>30} {:>8} {:>5} {:>11} {:>10} {:>14}",
        "Benchmark",
        "Environment change",
        "Failures",
        "Size",
        "Synthesis",
        "Overhead",
        "Interventions"
    );
    println!("{}", "-".repeat(108));
    for variant in environment_change_benchmarks() {
        let original =
            benchmark_by_name(original_of(variant.name())).expect("original benchmark exists");
        let original_env = original.env().clone();
        let changed_env = variant.env().clone();
        let config =
            pipeline_config_for(&original, options.effort, options.episodes, options.steps);
        // Train in the *original* environment, deploy in the changed one.
        let (oracle, _training_time) = train_oracle(&original_env, &config);
        let mut rng = SmallRng::seed_from_u64(7);
        match resynthesize_shield_for(&changed_env, &oracle, &config) {
            Ok((shield, report)) => {
                let eval = evaluate_shielded_system(
                    &changed_env,
                    &oracle,
                    &shield,
                    options.episodes,
                    options.steps,
                    &mut rng,
                );
                println!(
                    "{:<24} {:>30} {:>8} {:>5} {:>10.1}s {:>9.2}% {:>14}",
                    variant.name(),
                    variant
                        .description()
                        .split(':')
                        .next_back()
                        .unwrap_or("")
                        .trim(),
                    eval.neural_failures,
                    shield.num_pieces(),
                    report.synthesis_time.as_secs_f64(),
                    eval.overhead_percent,
                    eval.interventions
                );
                assert_eq!(eval.shielded_failures, 0);
            }
            Err(err) => {
                println!(
                    "{:<24}  [shield re-synthesis failed: {err}]",
                    variant.name()
                );
            }
        }
    }
}
