//! Sampled-constraint + branch-and-bound back-end for nonlinear closed loops.
//!
//! This is the general-purpose realization of Sec. 4.2: candidate invariant
//! coefficients are found by solving the sampled verification conditions as a
//! linear feasibility problem (the role Mosek plays in the paper), and every
//! candidate is then *soundly* checked by interval branch-and-bound.  Each
//! counterexample produced by the checker is turned into a new sampled
//! constraint, closing the inner counterexample-guided loop.
//!
//! All branch-and-bound checks route through `vrl_solver`'s per-thread
//! compiled-query cache: the separation condition re-proves the same
//! negated barrier over every band/obstacle region, and re-proof rounds
//! replay whole query families, so most checks after the first candidate
//! skip compilation entirely (outcome-unchanged; see the `vrl-solver`
//! crate docs).
//!
//! The three checked conditions mirror (8)–(10) of the paper, phrased over a
//! working domain `W` that provably contains the one-step image of the safe
//! rectangle:
//!
//! 1. **Init**: `E ≤ 0` on the initial region;
//! 2. **Separation**: `E > 0` on `W \ SafeBox` and on every obstacle, so the
//!    sub-level set `{E ≤ 0} ∩ W` is contained in the safe states;
//! 3. **Induction**: for every `s ∈ SafeBox` with `E(s) ≤ 0` and every
//!    admissible disturbance `d`, the Euler successor satisfies `E(s') ≤ 0`.

use crate::{BarrierCertificate, InvariantSketch, VerificationConfig, VerificationFailure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vrl_dynamics::{BoxRegion, EnvironmentContext};
use vrl_poly::{CompiledPolySet, Interval, Polynomial};
use vrl_solver::{
    prove_bound, solve_feasibility, BoundQuery, FeasibilityConfig, LinearConstraint, ProofOutcome,
};

/// Which verification condition a counterexample violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Condition {
    Init,
    Separation,
    Induction,
}

/// Verifies a (possibly nonlinear) polynomial closed loop by synthesizing a
/// polynomial barrier certificate of the configured degree.
///
/// # Errors
///
/// Returns [`VerificationFailure`] when no certificate is found within the
/// candidate budget; if the last obstruction was an uncovered initial state,
/// that state is reported so the outer CEGIS loop can split on it.
pub fn verify_nonlinear(
    env: &EnvironmentContext,
    action_polys: &[Polynomial],
    init_region: &BoxRegion,
    config: &VerificationConfig,
) -> Result<BarrierCertificate, VerificationFailure> {
    let n = env.state_dim();
    let safe_box = env.safety().safe_box().clone();
    let sketch = InvariantSketch::new(n, config.invariant_degree);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Disturbance variables are appended only for dimensions that actually
    // have a nonzero disturbance range.
    let disturbance = env.disturbance();
    let disturbed_dims: Vec<usize> = (0..n)
        .filter(|&i| disturbance.lower()[i] != 0.0 || disturbance.upper()[i] != 0.0)
        .collect();
    let total_vars = n + disturbed_dims.len();

    // Closed-loop Euler successor polynomials over (state, disturbance) vars.
    let successor: Vec<Polynomial> = env
        .successor_polynomials(action_polys)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let mut extended = p.embedded(total_vars, 0);
            if let Some(k) = disturbed_dims.iter().position(|&d| d == i) {
                extended = &extended + &Polynomial::variable(n + k, total_vars).scaled(env.dt());
            }
            extended
        })
        .collect();

    // The successor family is evaluated once per sampled transition
    // constraint and once per induction counterexample: compile it once per
    // verification run and share the per-point power tables across all `n`
    // components.
    let successor_set = CompiledPolySet::compile(&successor);

    // Working domain W: the safe box enlarged to provably contain the image
    // of one Euler step from anywhere in the safe box (under any admissible
    // disturbance), so "E > 0 outside the safe box but inside W" suffices.
    let mut extended_domain: Vec<Interval> = safe_box.to_intervals();
    extended_domain.extend(
        disturbed_dims
            .iter()
            .map(|&i| Interval::new(disturbance.lower()[i], disturbance.upper()[i])),
    );
    let working_box = {
        let mut images = vec![Interval::zero(); n];
        successor_set.eval_interval_into(&extended_domain, &mut images);
        let mut lows = Vec::with_capacity(n);
        let mut highs = Vec::with_capacity(n);
        for (i, image) in images.iter().enumerate() {
            lows.push(image.lo().min(safe_box.low(i)));
            highs.push(image.hi().max(safe_box.high(i)));
        }
        BoxRegion::new(lows, highs)
    };

    // The band W \ SafeBox as 2n slab boxes, plus the obstacles, are the
    // regions where E must be positive.
    let mut positive_regions: Vec<BoxRegion> = Vec::new();
    for i in 0..n {
        if working_box.high(i) > safe_box.high(i) + 1e-12 {
            let mut lows = working_box.lows().to_vec();
            let highs = working_box.highs().to_vec();
            lows[i] = safe_box.high(i);
            positive_regions.push(BoxRegion::new(lows, highs));
        }
        if working_box.low(i) < safe_box.low(i) - 1e-12 {
            let lows = working_box.lows().to_vec();
            let mut highs = working_box.highs().to_vec();
            highs[i] = safe_box.low(i);
            positive_regions.push(BoxRegion::new(lows, highs));
        }
    }
    for obstacle in env.safety().obstacles() {
        if let Some(clipped) = obstacle.intersection(&working_box) {
            positive_regions.push(clipped);
        }
    }

    // Feature scaling: each monomial is normalized by its magnitude over the
    // working domain so the first-order feasibility solver is well
    // conditioned regardless of the invariant degree.
    let working_intervals = working_box.to_intervals();
    let scale: Vec<f64> = sketch
        .basis()
        .iter()
        .map(|exps| {
            Polynomial::from_terms(n, vec![(exps.clone(), 1.0)])
                .eval_interval(&working_intervals)
                .abs_max()
                .max(1e-9)
        })
        .collect();
    let scaled_features = |state: &[f64]| -> Vec<f64> {
        sketch
            .features(state)
            .iter()
            .zip(scale.iter())
            .map(|(f, s)| f / s)
            .collect()
    };

    // --- Initial sampled constraints. ---
    let mut constraints: Vec<LinearConstraint> = Vec::new();
    let add_init_constraint = |constraints: &mut Vec<LinearConstraint>, state: &[f64]| {
        constraints.push(
            LinearConstraint::at_most(scaled_features(state), -config.init_margin).with_weight(4.0),
        );
    };
    let add_unsafe_constraint = |constraints: &mut Vec<LinearConstraint>, state: &[f64]| {
        constraints.push(
            LinearConstraint::at_least(scaled_features(state), config.unsafe_margin)
                .with_weight(2.0),
        );
    };
    let add_transition_constraint = |constraints: &mut Vec<LinearConstraint>,
                                     extended_state: &[f64]| {
        let state = &extended_state[..n];
        let mut next = vec![0.0; n];
        successor_set.eval_into(extended_state, &mut next);
        if next.iter().any(|x| !x.is_finite()) || !safe_box.contains(&next) {
            return;
        }
        let feat_now = scaled_features(state);
        let feat_next = scaled_features(&next);
        let norm2: f64 = state.iter().map(|x| x * x).sum();
        let decrease_margin = 1e-4 * norm2;
        let coefficients: Vec<f64> = feat_next
            .iter()
            .zip(feat_now.iter())
            .map(|(a, b)| a - b)
            .collect();
        constraints.push(LinearConstraint::at_most(coefficients, -decrease_margin));
    };

    for corner in init_region.corners() {
        add_init_constraint(&mut constraints, &corner);
    }
    add_init_constraint(&mut constraints, &init_region.center());
    for _ in 0..config.init_samples {
        let s = init_region.sample(&mut rng);
        add_init_constraint(&mut constraints, &s);
    }
    for region in &positive_regions {
        for _ in 0..config.unsafe_samples.max(1) / positive_regions.len().max(1) + 1 {
            let s = region.sample(&mut rng);
            add_unsafe_constraint(&mut constraints, &s);
        }
    }
    for _ in 0..config.transition_samples {
        let mut extended = safe_box.sample(&mut rng);
        for &i in &disturbed_dims {
            extended.push(rng.gen_range(disturbance.lower()[i]..=disturbance.upper()[i]));
        }
        add_transition_constraint(&mut constraints, &extended);
    }

    // --- Candidate / check loop. ---
    let feasibility = FeasibilityConfig {
        max_iterations: 20_000,
        step_size: 0.1,
        ..FeasibilityConfig::default()
    };
    // Warm start: the quadratic ellipsoid inscribed in the safe rectangle,
    // Σ (x_i / bound_i)² − 1, expressed in the (scaled) sketch basis.
    let mut warm_start: Option<Vec<f64>> = Some({
        let mut unscaled = vec![0.0; sketch.num_coefficients()];
        for (k, exps) in sketch.basis().iter().enumerate() {
            if exps.iter().all(|&e| e == 0) {
                unscaled[k] = -1.0;
            }
            if exps.iter().sum::<u32>() == 2 {
                if let Some(i) = exps.iter().position(|&e| e == 2) {
                    let bound = safe_box.high(i).abs().max(safe_box.low(i).abs()).max(1e-9);
                    unscaled[k] = 1.0 / (bound * bound);
                }
            }
        }
        unscaled
            .iter()
            .zip(scale.iter())
            .map(|(c, s)| c * s)
            .collect()
    });
    let mut last_failure: Option<(Condition, Vec<f64>)> = None;
    for _round in 0..config.max_candidate_rounds {
        let solution = solve_feasibility(&constraints, warm_start.as_deref(), &feasibility);
        warm_start = Some(solution.solution.clone());
        let coefficients: Vec<f64> = solution
            .solution
            .iter()
            .zip(scale.iter())
            .map(|(c, s)| c / s)
            .collect();
        let barrier = sketch.instantiate(&coefficients);
        if barrier.is_zero() {
            return Err(VerificationFailure::NoCertificateFound {
                counterexample: None,
                reason: "the candidate solver produced the trivial zero invariant".to_string(),
            });
        }
        match check_conditions(
            &barrier,
            init_region,
            &safe_box,
            &positive_regions,
            &successor,
            total_vars,
            &extended_domain,
            config,
        ) {
            None => return Ok(BarrierCertificate::new(barrier)),
            Some((condition, witness)) => {
                match condition {
                    Condition::Init => add_init_constraint(&mut constraints, &witness),
                    Condition::Separation => add_unsafe_constraint(&mut constraints, &witness),
                    Condition::Induction => add_transition_constraint(&mut constraints, &witness),
                }
                let state_witness = witness[..n.min(witness.len())].to_vec();
                last_failure = Some((condition, state_witness));
            }
        }
    }
    match last_failure {
        Some((Condition::Init, state)) => {
            Err(VerificationFailure::InitialStateNotCovered { state })
        }
        Some((_, state)) => Err(VerificationFailure::NoCertificateFound {
            counterexample: Some(state),
            reason: "candidate budget exhausted before all verification conditions held"
                .to_string(),
        }),
        None => Err(VerificationFailure::NoCertificateFound {
            counterexample: None,
            reason: "candidate budget exhausted".to_string(),
        }),
    }
}

/// Checks the three verification conditions; returns the violated condition
/// and a witness point (in extended coordinates for the induction condition)
/// or `None` when every condition is proved.
#[allow(clippy::too_many_arguments)]
fn check_conditions(
    barrier: &Polynomial,
    init_region: &BoxRegion,
    safe_box: &BoxRegion,
    positive_regions: &[BoxRegion],
    successor: &[Polynomial],
    total_vars: usize,
    extended_domain: &[Interval],
    config: &VerificationConfig,
) -> Option<(Condition, Vec<f64>)> {
    let n = safe_box.dim();
    // (1) Init: E ≤ 0 on the initial region.
    let init_outcome = prove_bound(
        &BoundQuery::new(barrier, 0.0),
        &init_region.to_intervals(),
        &config.branch_bound,
    );
    if let Some(witness) = outcome_witness(&init_outcome, init_region) {
        return Some((Condition::Init, witness));
    }
    // (2) Separation: E strictly positive outside the safe box / on obstacles.
    let negated = -barrier;
    for region in positive_regions {
        let outcome = prove_bound(
            &BoundQuery::new(&negated, -1e-9),
            &region.to_intervals(),
            &config.branch_bound,
        );
        if let Some(witness) = outcome_witness(&outcome, region) {
            return Some((Condition::Separation, witness));
        }
    }
    // (3) Induction: E(s') ≤ 0 whenever E(s) ≤ 0, adversarially over d.
    let barrier_extended = barrier.embedded(total_vars, 0);
    let next_value = barrier.substitute(successor);
    let query = BoundQuery::new(&next_value, 0.0).with_guard(&barrier_extended);
    let outcome = prove_bound(&query, extended_domain, &config.branch_bound);
    match outcome {
        ProofOutcome::Proved { .. } => None,
        ProofOutcome::Counterexample { point, .. } => Some((Condition::Induction, point)),
        ProofOutcome::Unknown { worst_box, .. } => {
            let witness = worst_box
                .map(|(lows, highs)| {
                    lows.iter()
                        .zip(highs.iter())
                        .map(|(l, h)| 0.5 * (l + h))
                        .collect()
                })
                .unwrap_or_else(|| extended_domain.iter().map(Interval::midpoint).collect());
            let _ = n;
            Some((Condition::Induction, witness))
        }
    }
}

fn outcome_witness(outcome: &ProofOutcome, region: &BoxRegion) -> Option<Vec<f64>> {
    match outcome {
        ProofOutcome::Proved { .. } => None,
        ProofOutcome::Counterexample { point, .. } => Some(point.clone()),
        ProofOutcome::Unknown { worst_box, .. } => Some(
            worst_box
                .as_ref()
                .map(|(lows, highs)| {
                    lows.iter()
                        .zip(highs.iter())
                        .map(|(l, h)| 0.5 * (l + h))
                        .collect()
                })
                .unwrap_or_else(|| region.center()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_dynamics::{Disturbance, PolyDynamics, SafetySpec};

    fn duffing_env() -> EnvironmentContext {
        let x = Polynomial::variable(0, 3);
        let y = Polynomial::variable(1, 3);
        let a = Polynomial::variable(2, 3);
        let ydot = &(&(&y.scaled(-0.6) - &x) - &x.pow(3)) + &a;
        EnvironmentContext::new(
            "duffing",
            PolyDynamics::new(2, 1, vec![y.clone(), ydot]).unwrap(),
            0.01,
            BoxRegion::new(vec![-1.0, -1.0], vec![1.0, 1.0]),
            SafetySpec::inside(BoxRegion::symmetric(&[5.0, 5.0])),
        )
        .with_action_bounds(vec![-25.0], vec![25.0])
    }

    #[test]
    fn certifies_a_stabilizing_program_on_the_duffing_oscillator() {
        // Example 4.3's first synthesized policy P1 = 0.39x − 1.41y over a
        // restricted initial region.
        let env = duffing_env();
        let program = vec![Polynomial::linear(&[0.39, -1.41], 0.0)];
        let config = VerificationConfig {
            invariant_degree: 4,
            ..VerificationConfig::default()
        };
        let cert = verify_nonlinear(&env, &program, env.init(), &config)
            .expect("the Example 4.3 policy must be certifiable on a restricted region");
        // Every initial corner is covered and unsafe states are excluded.
        for corner in env.init().corners() {
            assert!(cert.contains(&corner), "corner {corner:?} not covered");
        }
        assert!(!cert.contains(&[5.5, 0.0]));
        // The certificate is inductive along simulated closed-loop steps.
        let policy = vrl_synth::PolicyProgram::linear(&[vec![0.39, -1.41]], &[0.0]);
        let mut s = vec![1.0, 1.0];
        for _ in 0..3000 {
            assert!(cert.contains(&s), "trajectory left the invariant at {s:?}");
            assert!(!env.is_unsafe(&s));
            s = env.step_deterministic(&s, &vrl_dynamics::Policy::action(&policy, &s));
        }
    }

    #[test]
    fn rejects_a_destabilizing_program() {
        let env = duffing_env();
        // Positive feedback on both coordinates blows the system up.
        let program = vec![Polynomial::linear(&[3.0, 3.0], 0.0)];
        let config = VerificationConfig {
            invariant_degree: 2,
            max_candidate_rounds: 3,
            ..VerificationConfig::default()
        };
        let result = verify_nonlinear(&env, &program, env.init(), &config);
        assert!(
            result.is_err(),
            "a destabilizing program must not be certified"
        );
    }

    #[test]
    fn handles_disturbances_in_the_induction_condition() {
        // ẋ = a + d with |d| ≤ 0.05: a proportional controller still admits a
        // simple quadratic barrier.
        let a = Polynomial::variable(1, 2);
        let env = EnvironmentContext::new(
            "scalar",
            PolyDynamics::new(1, 1, vec![a]).unwrap(),
            0.01,
            BoxRegion::symmetric(&[0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
        .with_disturbance(Disturbance::symmetric(&[0.05]));
        let program = vec![Polynomial::linear(&[-2.0], 0.0)];
        let config = VerificationConfig {
            invariant_degree: 2,
            ..VerificationConfig::default()
        };
        let cert = verify_nonlinear(&env, &program, env.init(), &config)
            .expect("a proportional controller tolerates a small disturbance");
        assert!(cert.contains(&[0.3]));
        // The certificate is inductive under the worst-case disturbance.
        let mut s = vec![0.3];
        for _ in 0..1000 {
            assert!(cert.contains(&s));
            s[0] = s[0] + 0.01 * (-2.0 * s[0] + 0.05);
        }
    }
}
