//! Inductive invariants: sketches (Eq. 7) and verified barrier certificates.

use std::cell::RefCell;
use vrl_poly::{monomial_basis, BatchPoints, CompiledPolynomial, Polynomial, PortablePolynomial};

thread_local! {
    /// Reusable value buffer for [`BarrierCertificate::contains_batch`], so
    /// batched membership sweeps on the serving path allocate nothing in
    /// steady state.
    static BATCH_VALUES: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// An invariant sketch `φ[c](X) ::= E[c](X) ≤ 0` (Eq. 7): an affine
/// combination of every monomial up to a degree bound, with unknown
/// coefficients `c` to be synthesized.
///
/// # Examples
///
/// ```
/// use vrl_verify::InvariantSketch;
///
/// // Example 4.1: all monomials over (η, ω) of degree at most 4.
/// let sketch = InvariantSketch::new(2, 4);
/// assert_eq!(sketch.num_coefficients(), 15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantSketch {
    state_dim: usize,
    degree: u32,
    basis: Vec<Vec<u32>>,
}

impl InvariantSketch {
    /// Creates a sketch over `state_dim` variables with all monomials of
    /// total degree at most `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim == 0` or `degree == 0`.
    pub fn new(state_dim: usize, degree: u32) -> Self {
        assert!(state_dim > 0, "the state dimension must be positive");
        assert!(degree > 0, "the invariant degree must be positive");
        InvariantSketch {
            state_dim,
            degree,
            basis: monomial_basis(state_dim, degree),
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Degree bound of the sketch.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The monomial basis `b_i(X)` in the canonical order used by
    /// [`InvariantSketch::instantiate`].
    pub fn basis(&self) -> &[Vec<u32>] {
        &self.basis
    }

    /// Number of unknown coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.basis.len()
    }

    /// Evaluates every basis monomial at a state (the feature map used to
    /// build sampled linear constraints on the coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.state_dim()`.
    pub fn features(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim, "state dimension mismatch");
        self.basis
            .iter()
            .map(|exps| {
                exps.iter()
                    .zip(state.iter())
                    .map(|(&e, &x)| if e == 0 { 1.0 } else { x.powi(e as i32) })
                    .product()
            })
            .collect()
    }

    /// Instantiates the sketch at concrete coefficients, producing `E[c]`.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != self.num_coefficients()`.
    pub fn instantiate(&self, coefficients: &[f64]) -> Polynomial {
        Polynomial::from_basis(self.state_dim, &self.basis, coefficients)
    }
}

/// A verified inductive invariant `φ ::= E(X) ≤ 0`: a barrier certificate
/// separating the reachable states (where `E ≤ 0`) from the unsafe ones
/// (where `E > 0`).
///
/// Certificates cache a compiled form of `E` at construction, so membership
/// tests on the shield's serving path ([`BarrierCertificate::value`] /
/// [`BarrierCertificate::contains`]) run on the flat evaluation kernels
/// (bit-for-bit identical to the sparse reference evaluator).
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierCertificate {
    polynomial: Polynomial,
    /// Compiled snapshot of `polynomial` (rebuilt by the constructor; the
    /// source polynomial is immutable after construction).
    compiled: CompiledPolynomial,
}

impl BarrierCertificate {
    /// Wraps a polynomial as a barrier certificate.
    pub fn new(polynomial: Polynomial) -> Self {
        let compiled = polynomial.compile();
        BarrierCertificate {
            polynomial,
            compiled,
        }
    }

    /// The barrier polynomial `E`.
    pub fn polynomial(&self) -> &Polynomial {
        &self.polynomial
    }

    /// State dimension the certificate ranges over.
    pub fn state_dim(&self) -> usize {
        self.polynomial.nvars()
    }

    /// Value `E(state)`.
    ///
    /// # Panics
    ///
    /// Panics if the state has the wrong dimension.
    pub fn value(&self, state: &[f64]) -> f64 {
        self.compiled.eval(state)
    }

    /// Returns true when `state` lies inside the invariant region `E ≤ 0`.
    pub fn contains(&self, state: &[f64]) -> bool {
        self.value(state) <= 0.0
    }

    /// Values `E(state)` for a whole batch of states in one lane-parallel
    /// sweep, written into `out` (resized to `points.len()`).
    ///
    /// Every lane is bit-for-bit the scalar [`BarrierCertificate::value`]
    /// result, so batched membership tests decide exactly as the scalar
    /// path does.
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.state_dim()`.
    pub fn values_batch(&self, points: &BatchPoints, out: &mut Vec<f64>) {
        self.compiled.evaluate_batch(points, out);
    }

    /// Batched membership: `out[i] = (E(points[i]) ≤ 0)`, lane-for-lane
    /// identical to calling [`BarrierCertificate::contains`] per state.
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.state_dim()`.
    pub fn contains_batch(&self, points: &BatchPoints, out: &mut Vec<bool>) {
        BATCH_VALUES.with(|cell| {
            let values = &mut *cell.borrow_mut();
            self.values_batch(points, values);
            out.clear();
            out.extend(values.iter().map(|&v| v <= 0.0));
        });
    }

    /// Pretty-prints the invariant as `E(X) ≤ 0` with the given names.
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from the state dimension.
    pub fn pretty(&self, names: &[&str]) -> String {
        format!("{} <= 0", self.polynomial.to_string_with_names(names))
    }

    /// Extracts the plain-data form of this certificate.
    pub fn to_portable(&self) -> PortableCertificate {
        PortableCertificate {
            polynomial: self.polynomial.to_portable(),
        }
    }

    /// Rebuilds a certificate from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when the stored polynomial is structurally invalid.
    pub fn from_portable(portable: &PortableCertificate) -> Result<BarrierCertificate, String> {
        Ok(BarrierCertificate::new(Polynomial::from_portable(
            &portable.polynomial,
        )?))
    }
}

/// Plain-data form of a [`BarrierCertificate`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableCertificate {
    /// The barrier polynomial `E` of the invariant `E(X) ≤ 0`.
    pub polynomial: PortablePolynomial,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_matches_example_4_1() {
        let sketch = InvariantSketch::new(2, 4);
        assert_eq!(sketch.state_dim(), 2);
        assert_eq!(sketch.degree(), 4);
        assert_eq!(sketch.num_coefficients(), 15);
        assert_eq!(sketch.basis()[0], vec![0, 0]);
        // Degree 2 over 3 variables: 10 monomials.
        assert_eq!(InvariantSketch::new(3, 2).num_coefficients(), 10);
    }

    #[test]
    fn features_match_monomial_evaluation() {
        let sketch = InvariantSketch::new(2, 2);
        let state = [2.0, -3.0];
        let features = sketch.features(&state);
        // Basis order: 1, x, y, x², xy, y².
        assert_eq!(features, vec![1.0, 2.0, -3.0, 4.0, -6.0, 9.0]);
        // Instantiating with those coefficients equals Σ c_i b_i(s).
        let coeffs = vec![1.0, 0.5, 0.0, -1.0, 0.0, 2.0];
        let poly = sketch.instantiate(&coeffs);
        let expected: f64 = coeffs.iter().zip(features.iter()).map(|(c, f)| c * f).sum();
        assert!((poly.eval(&state) - expected).abs() < 1e-12);
    }

    #[test]
    fn certificate_membership_and_pretty_printing() {
        // E = x² + y² − 1.
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, 2);
        let cert = BarrierCertificate::new(e);
        assert_eq!(cert.state_dim(), 2);
        assert!(cert.contains(&[0.5, 0.5]));
        assert!(!cert.contains(&[1.0, 1.0]));
        assert!(cert.value(&[1.0, 0.0]).abs() < 1e-12);
        let text = cert.pretty(&["eta", "omega"]);
        assert!(text.ends_with("<= 0"));
        assert!(text.contains("eta^2"));
    }

    #[test]
    fn batched_membership_matches_scalar() {
        // E = x² + y² − 1 over a grid straddling the boundary, sized to
        // exercise full lanes plus a ragged tail.
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, 2);
        let cert = BarrierCertificate::new(e);
        let states: Vec<Vec<f64>> = (0..21)
            .map(|i| {
                let t = i as f64 * 0.1 - 1.0;
                vec![t, 0.7 - t]
            })
            .collect();
        let batch = vrl_poly::BatchPoints::from_states(2, &states);
        let mut values = Vec::new();
        cert.values_batch(&batch, &mut values);
        let mut inside = Vec::new();
        cert.contains_batch(&batch, &mut inside);
        for (i, state) in states.iter().enumerate() {
            assert_eq!(values[i].to_bits(), cert.value(state).to_bits());
            assert_eq!(inside[i], cert.contains(state));
        }
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = InvariantSketch::new(2, 0);
    }
}
