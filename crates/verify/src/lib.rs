//! Safety verification of synthesized policy programs (Sec. 4.2 of the
//! paper): inductive-invariant inference via barrier certificates.
//!
//! Two back-ends implement the search for an invariant `E[c](X) ≤ 0`
//! satisfying the verification conditions (8)–(10):
//!
//! * [`verify_linear`] — exact quadratic certificates for affine closed loops
//!   (discrete Lyapunov equation + ellipsoid geometry), which scale to the
//!   high-dimensional LTI benchmarks;
//! * [`verify_nonlinear`] — sampled-constraint candidate generation checked
//!   soundly by interval branch-and-bound, inside an inner
//!   counterexample-guided loop, for the low-dimensional nonlinear systems.
//!
//! [`verify_program`] selects the back-end automatically and is the entry
//! point used by the CEGIS driver in `vrl-shield`.
//!
//! # Examples
//!
//! ```
//! use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
//! use vrl_poly::Polynomial;
//! use vrl_verify::{verify_program, VerificationConfig};
//!
//! // ẋ = a with the stabilizing program a = -2x.
//! let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
//! let env = EnvironmentContext::new(
//!     "scalar", dynamics, 0.01,
//!     BoxRegion::symmetric(&[0.3]),
//!     SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
//! );
//! let program = vec![Polynomial::linear(&[-2.0], 0.0)];
//! let cert = verify_program(&env, &program, env.init(), &VerificationConfig::with_degree(2)).unwrap();
//! assert!(cert.contains(&[0.25]));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod barrier_backend;
mod engine;
mod invariant;
mod linear_backend;

pub use barrier_backend::verify_nonlinear;
pub use engine::{verify_program, VerificationConfig, VerificationFailure};
pub use invariant::{BarrierCertificate, InvariantSketch, PortableCertificate};
pub use linear_backend::verify_linear;
