//! Top-level verification entry point and shared configuration.

use crate::{verify_linear, verify_nonlinear, BarrierCertificate};
use std::fmt;
use vrl_dynamics::{BoxRegion, EnvironmentContext};
use vrl_poly::Polynomial;
use vrl_solver::BranchBoundConfig;

/// Configuration of the verification procedure (Sec. 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationConfig {
    /// Degree bound of the invariant sketch (Eq. 7).  Table 2 studies the
    /// effect of this parameter.
    pub invariant_degree: u32,
    /// Maximum candidate/check rounds of the inner counterexample loop used
    /// by the nonlinear (branch-and-bound) back-end.
    pub max_candidate_rounds: usize,
    /// Random samples drawn from the initial region when building the
    /// candidate constraints.
    pub init_samples: usize,
    /// Random samples drawn from the unsafe band and obstacles.
    pub unsafe_samples: usize,
    /// Random transition samples drawn from the safe region.
    pub transition_samples: usize,
    /// Branch-and-bound budget for each verification condition.
    pub branch_bound: BranchBoundConfig,
    /// Margin enforced on sampled initial-state constraints (`E ≤ -margin`).
    pub init_margin: f64,
    /// Margin enforced on sampled unsafe-state constraints (`E ≥ margin`).
    pub unsafe_margin: f64,
    /// Seed for the internal sampling RNG, so verification is reproducible.
    pub seed: u64,
}

impl Default for VerificationConfig {
    fn default() -> Self {
        VerificationConfig {
            invariant_degree: 4,
            max_candidate_rounds: 12,
            init_samples: 60,
            unsafe_samples: 80,
            transition_samples: 400,
            branch_bound: BranchBoundConfig {
                max_boxes: 120_000,
                min_width: 1e-3,
                tolerance: 1e-9,
                ..BranchBoundConfig::default()
            },
            init_margin: 0.05,
            unsafe_margin: 1.0,
            seed: 2019,
        }
    }
}

impl VerificationConfig {
    /// A configuration with the given invariant degree and defaults otherwise.
    pub fn with_degree(degree: u32) -> Self {
        VerificationConfig {
            invariant_degree: degree,
            ..VerificationConfig::default()
        }
    }
}

/// Why verification of a candidate program failed.
#[derive(Debug, Clone, PartialEq)]
pub enum VerificationFailure {
    /// The closed loop is not contractive, so no inductive invariant of the
    /// sought shape exists (the program does not stabilize the system).
    UnstableClosedLoop {
        /// Estimated spectral radius of the discrete closed loop.
        spectral_radius: f64,
    },
    /// A concrete initial state could not be covered by any invariant.  The
    /// outer CEGIS loop (Algorithm 2) uses this state as its counterexample.
    InitialStateNotCovered {
        /// The uncovered initial state.
        state: Vec<f64>,
    },
    /// No certificate was found within the candidate budget.
    NoCertificateFound {
        /// The last counterexample observed, if any.
        counterexample: Option<Vec<f64>>,
        /// Human-readable reason.
        reason: String,
    },
    /// The program or environment falls outside what the selected back-end
    /// supports (e.g. a non-polynomial construct).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
}

impl VerificationFailure {
    /// The counterexample initial state carried by this failure, if any.
    pub fn counterexample(&self) -> Option<&[f64]> {
        match self {
            VerificationFailure::InitialStateNotCovered { state } => Some(state),
            VerificationFailure::NoCertificateFound {
                counterexample: Some(c),
                ..
            } => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for VerificationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationFailure::UnstableClosedLoop { spectral_radius } => write!(
                f,
                "closed loop is not contractive (spectral radius ≈ {spectral_radius:.4})"
            ),
            VerificationFailure::InitialStateNotCovered { state } => {
                write!(f, "initial state {state:?} is not covered by any invariant")
            }
            VerificationFailure::NoCertificateFound { reason, .. } => {
                write!(f, "no inductive invariant found: {reason}")
            }
            VerificationFailure::Unsupported { reason } => {
                write!(
                    f,
                    "verification back-end does not support this problem: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for VerificationFailure {}

/// Verifies that deploying the program given by `action_polys` (one
/// polynomial per action dimension, over the state variables) in `env` keeps
/// every trajectory starting in `init_region` away from the unsafe states,
/// by synthesizing an inductive invariant (Sec. 4.2).
///
/// The back-end is selected automatically:
///
/// * if the closed loop is affine, the exact quadratic-Lyapunov back-end is
///   used (scales to the 16- and 18-dimensional benchmarks);
/// * otherwise the sampled-constraint + branch-and-bound back-end is used
///   (sound for the low-dimensional nonlinear benchmarks).
///
/// On success the returned [`BarrierCertificate`] `E` satisfies the three
/// verification conditions (8)–(10) of the paper over the working domain.
///
/// Every branch-and-bound query issued by either back-end pulls its
/// compiled `objective + guards` family from the per-thread
/// `vrl_solver::CompiledQueryCache` and sweeps its frontier through the
/// lane-batched interval kernels, so CEGIS drivers that call this function
/// repeatedly (re-proof rounds, shrink steps, Table 3 redeploys) never
/// recompile an already-seen certificate family; both optimizations are
/// bit-for-bit outcome-neutral, so the certificate produced is exactly the
/// scalar path's.
///
/// # Errors
///
/// Returns a [`VerificationFailure`] describing why no certificate could be
/// produced; when the failure pinpoints an uncovered initial state, that
/// state is the counterexample driving the outer CEGIS loop.
pub fn verify_program(
    env: &EnvironmentContext,
    action_polys: &[Polynomial],
    init_region: &BoxRegion,
    config: &VerificationConfig,
) -> Result<BarrierCertificate, VerificationFailure> {
    assert_eq!(
        action_polys.len(),
        env.action_dim(),
        "one action polynomial per action dimension is required"
    );
    assert_eq!(
        init_region.dim(),
        env.state_dim(),
        "initial region dimension must match the environment"
    );
    let closed_loop = env.dynamics().close_loop(action_polys);
    let affine = closed_loop.iter().all(|p| p.degree() <= 1);
    if affine {
        match verify_linear(env, action_polys, init_region, config) {
            Ok(cert) => return Ok(cert),
            Err(failure) => {
                // Fall back to the nonlinear back-end only when it has a
                // chance of succeeding (low dimension) and the failure is not
                // a definitive stability problem.
                let fallback_viable = env.state_dim() <= 4
                    && !matches!(failure, VerificationFailure::UnstableClosedLoop { .. });
                if !fallback_viable {
                    return Err(failure);
                }
            }
        }
    }
    if env.state_dim() > 6 {
        return Err(VerificationFailure::Unsupported {
            reason: format!(
                "the branch-and-bound back-end is limited to 6 state dimensions, got {}",
                env.state_dim()
            ),
        });
    }
    verify_nonlinear(env, action_polys, init_region, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sensible() {
        let c = VerificationConfig::default();
        assert_eq!(c.invariant_degree, 4);
        assert!(c.max_candidate_rounds > 0);
        let d2 = VerificationConfig::with_degree(2);
        assert_eq!(d2.invariant_degree, 2);
        assert_eq!(d2.max_candidate_rounds, c.max_candidate_rounds);
    }

    #[test]
    fn failure_display_and_counterexamples() {
        let unstable = VerificationFailure::UnstableClosedLoop {
            spectral_radius: 1.2,
        };
        assert!(unstable.to_string().contains("1.2"));
        assert!(unstable.counterexample().is_none());
        let uncovered = VerificationFailure::InitialStateNotCovered {
            state: vec![1.0, 2.0],
        };
        assert_eq!(uncovered.counterexample().unwrap(), &[1.0, 2.0]);
        assert!(uncovered.to_string().contains("not covered"));
        let none_found = VerificationFailure::NoCertificateFound {
            counterexample: Some(vec![0.5]),
            reason: "budget exhausted".to_string(),
        };
        assert_eq!(none_found.counterexample().unwrap(), &[0.5]);
        assert!(none_found.to_string().contains("budget exhausted"));
        let unsupported = VerificationFailure::Unsupported { reason: "x".into() };
        assert!(unsupported.to_string().contains("x"));
    }
}
