//! Exact quadratic-invariant back-end for affine closed loops.
//!
//! When the synthesized program is affine and the environment dynamics are
//! LTI, the Euler closed loop is `s' = A_d·s + c_d (+ Δt·d)`.  A quadratic
//! barrier `E(s) = (s − s*)ᵀ P (s − s*) − ℓ` centred at the closed-loop
//! equilibrium `s*` then certifies safety when
//!
//! 1. `P` solves the discrete Lyapunov equation `A_dᵀ P A_d − P = −I`
//!    (so the `P`-norm contracts by `ρ ≤ √(1 − 1/λ_max(P))` per step),
//! 2. the level `ℓ` is large enough to contain every initial state and to
//!    absorb the worst-case disturbance, and
//! 3. small enough that the ellipsoid `{E ≤ 0}` stays inside the safe
//!    rectangle and outside every obstacle.
//!
//! This plays the role of a degree-2 SOS certificate in the paper's pipeline
//! and scales to the 16- and 18-dimensional benchmarks.
//!
//! The per-obstacle level checks run through [`sound_minimum`], whose
//! compiled form comes from `vrl_solver`'s per-thread query cache — Table 3
//! style redeploys that re-verify the same quadratic against the same
//! obstacles skip recompilation (outcome-unchanged).

use crate::{BarrierCertificate, VerificationConfig, VerificationFailure};
use vrl_dynamics::{BoxRegion, EnvironmentContext};
use vrl_linalg::{spectral_radius, Matrix, SymmetricEigen, Vector};
use vrl_poly::{PolyScratch, Polynomial};
use vrl_solver::{solve_discrete_lyapunov, sound_minimum};

/// Maximum dimension for exact vertex enumeration of the initial box; above
/// this a conservative interval bound is used instead.
const MAX_EXACT_CORNER_DIM: usize = 14;

/// Verifies an affine program in an affine environment with a quadratic
/// invariant.  See the module documentation for the certificate conditions.
///
/// # Errors
///
/// Returns [`VerificationFailure`] when the closed loop is not contractive,
/// the initial region cannot be covered, or the geometry (safe box,
/// obstacles, disturbance) admits no valid level.
pub fn verify_linear(
    env: &EnvironmentContext,
    action_polys: &[Polynomial],
    init_region: &BoxRegion,
    _config: &VerificationConfig,
) -> Result<BarrierCertificate, VerificationFailure> {
    let n = env.state_dim();
    let closed = env.dynamics().close_loop(action_polys);
    if closed.iter().any(|p| p.degree() > 1) {
        return Err(VerificationFailure::Unsupported {
            reason: "the quadratic back-end requires an affine closed loop".to_string(),
        });
    }
    // Discrete closed loop s' = A_d s + c_d.
    let dt = env.dt();
    let mut a_d = Matrix::identity(n);
    let mut c_d = Vector::zeros(n);
    for (i, p) in closed.iter().enumerate() {
        c_d[i] = dt * p.constant_term();
        for j in 0..n {
            let mut exps = vec![0u32; n];
            exps[j] = 1;
            a_d[(i, j)] += dt * p.coefficient(&exps);
        }
    }
    let radius = spectral_radius(&a_d, 500).unwrap_or(f64::INFINITY);
    if radius >= 1.0 - 1e-9 {
        return Err(VerificationFailure::UnstableClosedLoop {
            spectral_radius: radius,
        });
    }
    // Equilibrium s* solves (I − A_d) s* = c_d.
    let i_minus_a = &Matrix::identity(n) - &a_d;
    let equilibrium = i_minus_a
        .solve(&c_d)
        .map_err(|_| VerificationFailure::Unsupported {
            reason: "closed loop has no isolated equilibrium".to_string(),
        })?;
    let safe_box = env.safety().safe_box();
    if !safe_box.contains(equilibrium.as_slice()) {
        return Err(VerificationFailure::NoCertificateFound {
            counterexample: None,
            reason: "the closed-loop equilibrium lies outside the safe rectangle".to_string(),
        });
    }
    // Lyapunov matrix and its spectral data (Q = I keeps the disturbance
    // margin 1 − 1/λ_max(P) tight; see `decrease_certificate`).
    let q = Matrix::identity(n);
    let p =
        solve_discrete_lyapunov(&a_d, &q).map_err(|e| VerificationFailure::NoCertificateFound {
            counterexample: None,
            reason: format!("discrete Lyapunov equation could not be solved: {e}"),
        })?;
    let eig = SymmetricEigen::new(&p).map_err(|e| VerificationFailure::NoCertificateFound {
        counterexample: None,
        reason: format!("eigen-decomposition failed: {e}"),
    })?;
    let lambda_max = eig.max_eigenvalue();
    let p_inv = p
        .inverse()
        .map_err(|e| VerificationFailure::NoCertificateFound {
            counterexample: None,
            reason: format!("Lyapunov matrix is numerically singular: {e}"),
        })?;
    // Largest level keeping the ellipsoid inside the safe box.
    let mut level_max = f64::INFINITY;
    for i in 0..n {
        let reach = p_inv[(i, i)].max(1e-300);
        let to_high = safe_box.high(i) - equilibrium[i];
        let to_low = equilibrium[i] - safe_box.low(i);
        level_max = level_max.min(to_high * to_high / reach);
        level_max = level_max.min(to_low * to_low / reach);
    }
    // Obstacles: the ellipsoid must stay below the obstacle's minimum value.
    let quadratic = centered_quadratic(&p, equilibrium.as_slice());
    for obstacle in env.safety().obstacles() {
        let lower_bound = sound_minimum(&quadratic, &obstacle.to_intervals(), 20_000);
        level_max = level_max.min(lower_bound - 1e-9);
    }
    // Smallest level covering the initial region.
    let (level_init, worst_corner) = initial_level(&quadratic, init_region, n);
    // Smallest level absorbing the worst-case disturbance.
    let disturbance_norm: f64 = env
        .disturbance()
        .lower()
        .iter()
        .zip(env.disturbance().upper().iter())
        .map(|(lo, hi)| {
            let m = lo.abs().max(hi.abs());
            m * m
        })
        .sum::<f64>()
        .sqrt();
    // P-norm contraction factor: from A_dᵀPA_d − P = −Q it follows that
    // ‖A_d s̃‖²_P ≤ (1 − λ_min(Q)/λ_max(P))·‖s̃‖²_P.
    let q_min = (0..n).map(|i| q[(i, i)]).fold(f64::INFINITY, f64::min);
    let rho = (1.0 - q_min / lambda_max).max(0.0).sqrt();
    let _ = &q;
    let level_disturbance = if disturbance_norm > 0.0 {
        let b = dt * lambda_max.sqrt() * disturbance_norm;
        let denom = (1.0 - rho).max(1e-12);
        (b / denom).powi(2)
    } else {
        0.0
    };
    if level_init > level_max {
        return Err(VerificationFailure::InitialStateNotCovered {
            state: worst_corner,
        });
    }
    if level_disturbance > level_max {
        return Err(VerificationFailure::NoCertificateFound {
            counterexample: None,
            reason: format!(
                "disturbance requires level {level_disturbance:.3} but the safe rectangle only permits {level_max:.3}"
            ),
        });
    }
    // Use the most permissive admissible level: larger invariants intervene
    // less often when used as shields.
    let level = level_max;
    let barrier = &quadratic - &Polynomial::constant(level, n);
    Ok(BarrierCertificate::new(barrier))
}

/// Builds the quadratic polynomial `(s − s*)ᵀ P (s − s*)` over the state
/// variables.
fn centered_quadratic(p: &Matrix, center: &[f64]) -> Polynomial {
    let n = center.len();
    let mut poly = Polynomial::zero(n);
    for i in 0..n {
        let xi = &Polynomial::variable(i, n) - &Polynomial::constant(center[i], n);
        for j in 0..n {
            if p[(i, j)] == 0.0 {
                continue;
            }
            let xj = &Polynomial::variable(j, n) - &Polynomial::constant(center[j], n);
            poly = &poly + &(&xi * &xj).scaled(p[(i, j)]);
        }
    }
    poly
}

/// Smallest level containing the initial box, plus the witness corner.
///
/// The quadratic is compiled once: the exact branch walks all `2ⁿ` corners
/// of the initial box, which is the evaluation-heavy part of this back-end.
fn initial_level(quadratic: &Polynomial, init_region: &BoxRegion, n: usize) -> (f64, Vec<f64>) {
    let compiled = quadratic.compile();
    let mut scratch = PolyScratch::new();
    if n <= MAX_EXACT_CORNER_DIM {
        let mut worst = init_region.center();
        let mut level = compiled.eval_with(&worst, &mut scratch);
        for corner in init_region.corners() {
            let value = compiled.eval_with(&corner, &mut scratch);
            if value > level {
                level = value;
                worst = corner;
            }
        }
        (level, worst)
    } else {
        // Conservative interval bound for high-dimensional boxes; the witness
        // is the corner farthest from the centre, which is where the convex
        // quadratic attains its maximum most often.
        let level = compiled
            .eval_interval_with(&init_region.to_intervals(), &mut scratch)
            .hi();
        (level, init_region.highs().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, Disturbance, PolyDynamics, SafetySpec};

    fn double_integrator(disturbance: Option<Disturbance>) -> EnvironmentContext {
        let a = vec![vec![0.0, 1.0], vec![0.0, 0.0]];
        let b = vec![vec![0.0], vec![1.0]];
        let mut env = EnvironmentContext::new(
            "di",
            PolyDynamics::linear(&a, &b, None),
            0.01,
            BoxRegion::symmetric(&[0.3, 0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
        );
        if let Some(d) = disturbance {
            env = env.with_disturbance(d);
        }
        env
    }

    fn stabilizing_program() -> Vec<Polynomial> {
        vec![Polynomial::linear(&[-2.0, -3.0], 0.0)]
    }

    #[test]
    fn certifies_a_stabilizing_linear_program() {
        let env = double_integrator(None);
        let cert = verify_linear(
            &env,
            &stabilizing_program(),
            env.init(),
            &VerificationConfig::default(),
        )
        .expect("the PD controller must be certifiable");
        // Initial states are inside the invariant, far unsafe states outside.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = env.init().sample(&mut rng);
            assert!(cert.contains(&s), "initial state {s:?} not covered");
        }
        assert!(!cert.contains(&[2.5, 0.0]));
        assert!(!cert.contains(&[0.0, 2.5]));
        // The invariant is actually inductive along simulated steps.
        let program = vrl_synth::PolicyProgram::linear(&[vec![-2.0, -3.0]], &[0.0]);
        for _ in 0..20 {
            let mut s = env.init().sample(&mut rng);
            for _ in 0..500 {
                assert!(cert.contains(&s));
                assert!(!env.is_unsafe(&s));
                s = env.step_deterministic(&s, &vrl_dynamics::Policy::action(&program, &s));
            }
        }
    }

    #[test]
    fn rejects_a_destabilizing_program() {
        let env = double_integrator(None);
        let runaway = vec![Polynomial::linear(&[2.0, 0.5], 0.0)];
        let err =
            verify_linear(&env, &runaway, env.init(), &VerificationConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            VerificationFailure::UnstableClosedLoop { .. }
        ));
    }

    #[test]
    fn reports_uncovered_initial_states_when_s0_is_too_large() {
        // Make the initial box nearly as large as the safe box: the ellipsoid
        // inscribed in the safe box cannot contain its corners.
        let env = double_integrator(None).with_init(BoxRegion::symmetric(&[1.95, 1.95]));
        let err = verify_linear(
            &env,
            &stabilizing_program(),
            env.init(),
            &VerificationConfig::default(),
        )
        .unwrap_err();
        match err {
            VerificationFailure::InitialStateNotCovered { state } => {
                assert!(env.init().contains(&state));
            }
            other => panic!("expected an uncovered initial state, got {other:?}"),
        }
    }

    #[test]
    fn handles_bounded_disturbances() {
        let env = double_integrator(Some(Disturbance::symmetric(&[0.0, 0.05])));
        let cert = verify_linear(
            &env,
            &stabilizing_program(),
            env.init(),
            &VerificationConfig::default(),
        )
        .expect("small disturbances must still be certifiable");
        // Simulate with the worst-case constant disturbance and check the
        // invariant is never left.
        let program = vrl_synth::PolicyProgram::linear(&[vec![-2.0, -3.0]], &[0.0]);
        let mut s = vec![0.3, 0.3];
        for _ in 0..2000 {
            assert!(cert.contains(&s), "state {s:?} escaped the invariant");
            let a = vrl_dynamics::Policy::action(&program, &s);
            let mut next = env.step_deterministic(&s, &a);
            next[1] += env.dt() * 0.05;
            s = next;
        }
    }

    #[test]
    fn obstacles_shrink_the_certified_level() {
        let base = double_integrator(None);
        let with_obstacle = base.clone().with_safety(
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0]))
                .with_obstacle(BoxRegion::new(vec![1.0, -2.0], vec![2.0, 2.0])),
        );
        let cert_free = verify_linear(
            &base,
            &stabilizing_program(),
            base.init(),
            &VerificationConfig::default(),
        )
        .unwrap();
        let cert_blocked = verify_linear(
            &with_obstacle,
            &stabilizing_program(),
            with_obstacle.init(),
            &VerificationConfig::default(),
        )
        .unwrap();
        // The obstacle-aware certificate uses a strictly smaller level (its
        // invariant region is a strict subset) and excludes the obstacle.
        let origin = [0.0, 0.0];
        assert!(cert_blocked.value(&origin) >= cert_free.value(&origin));
        assert!(!cert_blocked.contains(&[1.5, 0.0]));
        assert!(!cert_blocked.contains(&[1.0, 0.0]));
    }
}
