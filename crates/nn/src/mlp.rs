//! Multi-layer perceptrons with manual backpropagation.

use crate::Activation;
use rand::Rng;
use vrl_linalg::{Matrix, Vector};

/// A dense layer `y = act(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vector,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with Xavier-style random initialization.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scale = (2.0 / (input_dim + output_dim) as f64).sqrt();
        let weights = Matrix::from_fn(output_dim, input_dim, |_, _| {
            (rng.gen::<f64>() * 2.0 - 1.0) * scale
        });
        DenseLayer {
            weights,
            bias: Vector::zeros(output_dim),
            activation,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Creates a zero-initialized layer (all weights and biases zero), the
    /// starting point when a network is reconstructed from stored
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(input_dim: usize, output_dim: usize, activation: Activation) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "layer dimensions must be positive"
        );
        DenseLayer {
            weights: Matrix::zeros(output_dim, input_dim),
            bias: Vector::zeros(output_dim),
            activation,
        }
    }

    fn pre_activation(&self, input: &Vector) -> Vector {
        &self.weights.matvec(input) + &self.bias
    }

    /// Runs the layer on a raw slice, writing the activated output into
    /// `out` (resized as needed) without any further allocation.
    ///
    /// Bit-identical to the `DenseLayer::pre_activation` + activation path:
    /// same summation order, bias add, then activation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.resize(self.output_dim(), 0.0);
        self.weights.matvec_into(input, out);
        for (o, b) in out.iter_mut().zip(self.bias.iter()) {
            *o = self.activation.apply(*o + *b);
        }
    }

    /// Runs the layer on a sweep of [`BATCH_LANES`] inputs packed
    /// **feature-major** in `inputs` (`inputs[k * BATCH_LANES + lane]` is
    /// feature `k` of lane `lane`; pad lanes hold `0.0`), writing
    /// feature-major outputs into `out` (length
    /// `output_dim * BATCH_LANES`).
    ///
    /// The lane dimension is the innermost, contiguous axis, so the inner
    /// loop is a fixed-width 8-lane multiply-accumulate the compiler
    /// lowers to SIMD: each weight `w[i][k]` is loaded once and broadcast
    /// across all lanes, and each lane's accumulator advances through `k`
    /// in exactly the order of [`DenseLayer::forward_into`]'s dot product
    /// (`((0 + p₀) + p₁) + …`), then adds the bias and applies the
    /// activation — every live lane's output is therefore bit-identical
    /// to the scalar path.  Pad lanes accumulate zeros and are never read.
    fn forward_batch(&self, inputs: &[f64], out: &mut [f64]) {
        let in_dim = self.input_dim();
        let out_dim = self.output_dim();
        debug_assert_eq!(inputs.len(), in_dim * BATCH_LANES);
        debug_assert_eq!(out.len(), out_dim * BATCH_LANES);
        for i in 0..out_dim {
            let row = self.weights.row(i);
            let mut acc = [0.0f64; BATCH_LANES];
            // `chunks_exact` + the array conversion give the optimizer a
            // constant 8-lane trip count with no bounds checks in the
            // multiply-accumulate loop.
            for (xs, &w) in inputs.chunks_exact(BATCH_LANES).zip(row.iter()) {
                let xs: &[f64; BATCH_LANES] = xs.try_into().expect("exact chunk");
                for l in 0..BATCH_LANES {
                    acc[l] += w * xs[l];
                }
            }
            let b = self.bias[i];
            let outs = &mut out[i * BATCH_LANES..(i + 1) * BATCH_LANES];
            for (o, &a) in outs.iter_mut().zip(acc.iter()) {
                *o = self.activation.apply(a + b);
            }
        }
    }
}

/// Number of states a batched forward pass processes per sweep: enough to
/// amortize each weight row's memory traffic, small enough that a sweep's
/// lane-major activations stay cache-resident next to the row.
pub const BATCH_LANES: usize = 8;

/// Reusable forward-pass buffers for [`Mlp::forward_into`] and
/// [`Mlp::forward_batch_into`].
///
/// The ping-pong buffers grow to the widest layer (times [`BATCH_LANES`]
/// for the batched pair) they have served and are then allocation-free.
/// Keep one scratch per worker thread; the serving path in `vrl-runtime`
/// does exactly that.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    current: Vec<f64>,
    next: Vec<f64>,
    batch_current: Vec<f64>,
    batch_next: Vec<f64>,
}

impl MlpScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MlpScratch::default()
    }
}

/// Per-layer gradients produced by backpropagation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradient {
    /// Gradient of the loss with respect to the layer weights.
    pub weights: Matrix,
    /// Gradient of the loss with respect to the layer bias.
    pub bias: Vector,
}

/// Intermediate values cached during a forward pass, needed by backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Layer inputs (index 0 is the network input).
    inputs: Vec<Vector>,
    /// Pre-activation values per layer.
    pre_activations: Vec<Vector>,
    /// Final network output.
    output: Vector,
}

impl ForwardCache {
    /// The network output of this forward pass.
    pub fn output(&self) -> &[f64] {
        self.output.as_slice()
    }
}

/// A fully connected feed-forward network.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use vrl_nn::{Activation, Mlp};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = Mlp::new(&[2, 16, 1], Activation::Tanh, Activation::Identity, &mut rng);
/// assert_eq!(net.forward(&[0.1, -0.2]).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// Plain-data form of an [`Mlp`] used by artifact persistence: the layer
/// size chain `[input, hidden…, output]`, one [`Activation::tag`] per layer,
/// and the flat parameter vector in [`Mlp::parameters`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableMlp {
    /// Layer sizes, input first, output last (length = layers + 1).
    pub layer_sizes: Vec<u32>,
    /// One activation tag per layer (see [`Activation::tag`]).
    pub activations: Vec<u8>,
    /// Flat parameters (weights row-major then bias, per layer in order).
    pub parameters: Vec<f64>,
}

impl Mlp {
    /// Creates a network with the given layer sizes (input, hidden…, output),
    /// using `hidden` activation on hidden layers and `output` activation on
    /// the last layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        assert!(sizes.iter().all(|s| *s > 0), "layer sizes must be positive");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let activation = if i + 2 == sizes.len() { output } else { hidden };
            layers.push(DenseLayer::new(sizes[i], sizes[i + 1], activation, rng));
        }
        Mlp { layers }
    }

    /// Input dimension of the network.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, DenseLayer::input_dim)
    }

    /// Output dimension of the network.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, DenseLayer::output_dim)
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_parameters).sum()
    }

    /// Runs the network on an input.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = MlpScratch::new();
        self.forward_into(input, &mut scratch).to_vec()
    }

    /// Runs the network through caller-provided scratch buffers, returning
    /// the output as a borrow of the scratch: in steady state the forward
    /// pass performs no allocation at all.
    ///
    /// Bit-identical to [`Mlp::forward`] (which delegates here): the same
    /// matrix-vector kernels run in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward_into<'s>(&self, input: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        scratch.current.clear();
        scratch.current.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward_into(&scratch.current, &mut scratch.next);
            std::mem::swap(&mut scratch.current, &mut scratch.next);
        }
        &scratch.current
    }

    /// Runs the network on a whole batch of inputs through one shared
    /// scratch, writing one output vector per input into `out` (whose spine
    /// and element buffers are recycled across calls).
    ///
    /// Inputs are processed [`BATCH_LANES`] at a time with each layer's
    /// weight rows blocked across the lane (see
    /// `DenseLayer::forward_batch`), which amortizes the weight-matrix
    /// memory traffic that dominates large-layer scalar forwards.  Output
    /// `i` is **bit-identical** to `forward_into(&inputs[i])` — batching
    /// reorders only independent work (debug builds assert this per lane).
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `self.input_dim()`.
    pub fn forward_batch_into(
        &self,
        inputs: &[Vec<f64>],
        scratch: &mut MlpScratch,
        out: &mut Vec<Vec<f64>>,
    ) {
        let in_dim = self.input_dim();
        let out_dim = self.output_dim();
        out.resize(inputs.len(), Vec::new());
        let mut base = 0;
        while base < inputs.len() {
            let lanes = (inputs.len() - base).min(BATCH_LANES);
            let chunk = &inputs[base..base + lanes];
            // Transpose the chunk feature-major into the current buffer,
            // zero-padding the dead lanes of a ragged tail.
            scratch.batch_current.clear();
            scratch.batch_current.resize(in_dim * BATCH_LANES, 0.0);
            for (l, input) in chunk.iter().enumerate() {
                assert_eq!(input.len(), in_dim, "input dimension mismatch");
                for (k, &x) in input.iter().enumerate() {
                    scratch.batch_current[k * BATCH_LANES + l] = x;
                }
            }
            for layer in &self.layers {
                scratch
                    .batch_next
                    .resize(layer.output_dim() * BATCH_LANES, 0.0);
                layer.forward_batch(&scratch.batch_current, &mut scratch.batch_next);
                std::mem::swap(&mut scratch.batch_current, &mut scratch.batch_next);
            }
            for (l, slot) in out[base..base + lanes].iter_mut().enumerate() {
                slot.clear();
                slot.extend((0..out_dim).map(|j| scratch.batch_current[j * BATCH_LANES + l]));
            }
            base += lanes;
        }
        #[cfg(debug_assertions)]
        for (input, output) in inputs.iter().zip(out.iter()) {
            let reference = self.forward_into(input, scratch);
            debug_assert!(
                reference
                    .iter()
                    .zip(output.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "batched forward diverged from the scalar pass"
            );
        }
    }

    /// Runs the network and keeps the intermediate values needed for
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward_cached(&self, input: &[f64]) -> ForwardCache {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut current = Vector::from_slice(input);
        for layer in &self.layers {
            inputs.push(current.clone());
            let pre = layer.pre_activation(&current);
            current = pre.map(|x| layer.activation.apply(x));
            pre_activations.push(pre);
        }
        ForwardCache {
            inputs,
            pre_activations,
            output: current,
        }
    }

    /// Backpropagates `output_grad` (the gradient of the loss with respect to
    /// the network output) through the cached forward pass, returning per-layer
    /// parameter gradients and the gradient with respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if `output_grad.len() != self.output_dim()`.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
    ) -> (Vec<LayerGradient>, Vec<f64>) {
        assert_eq!(
            output_grad.len(),
            self.output_dim(),
            "output gradient dimension mismatch"
        );
        let mut gradients: Vec<LayerGradient> = Vec::with_capacity(self.layers.len());
        let mut upstream = Vector::from_slice(output_grad);
        for (index, layer) in self.layers.iter().enumerate().rev() {
            let pre = &cache.pre_activations[index];
            let input = &cache.inputs[index];
            // δ = upstream ⊙ act'(pre)
            let delta = Vector::from_fn(upstream.len(), |i| {
                upstream[i] * layer.activation.derivative(pre[i])
            });
            let weight_grad = Matrix::from_fn(layer.output_dim(), layer.input_dim(), |i, j| {
                delta[i] * input[j]
            });
            let bias_grad = delta.clone();
            upstream = layer.weights.vecmat(&delta);
            gradients.push(LayerGradient {
                weights: weight_grad,
                bias: bias_grad,
            });
        }
        gradients.reverse();
        (gradients, upstream.into_vec())
    }

    /// Applies gradients scaled by `-learning_rate` (i.e. a plain SGD step).
    ///
    /// # Panics
    ///
    /// Panics if the gradient count or shapes do not match the network.
    pub fn apply_gradients(&mut self, gradients: &[LayerGradient], learning_rate: f64) {
        assert_eq!(
            gradients.len(),
            self.layers.len(),
            "one gradient per layer is required"
        );
        for (layer, grad) in self.layers.iter_mut().zip(gradients.iter()) {
            layer.weights.axpy(-learning_rate, &grad.weights);
            layer.bias.axpy(-learning_rate, &grad.bias);
        }
    }

    /// Flattens all parameters into a single vector (weights row-major, then
    /// bias, per layer in order).
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            out.extend_from_slice(layer.weights.as_slice());
            out.extend_from_slice(layer.bias.as_slice());
        }
        out
    }

    /// Restores parameters from a flat vector produced by [`Mlp::parameters`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_parameters()`.
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter vector has the wrong length"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            let w_len = layer.weights.rows() * layer.weights.cols();
            layer
                .weights
                .as_mut_slice()
                .copy_from_slice(&params[offset..offset + w_len]);
            offset += w_len;
            let b_len = layer.bias.len();
            layer
                .bias
                .as_mut_slice()
                .copy_from_slice(&params[offset..offset + b_len]);
            offset += b_len;
        }
    }

    /// Flattens per-layer gradients in the same order as [`Mlp::parameters`].
    pub fn flatten_gradients(&self, gradients: &[LayerGradient]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for grad in gradients {
            out.extend_from_slice(grad.weights.as_slice());
            out.extend_from_slice(grad.bias.as_slice());
        }
        out
    }

    /// Creates a network from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive layer dimensions disagree.
    pub fn from_layers(layers: Vec<DenseLayer>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "consecutive layer dimensions must agree"
            );
        }
        Mlp { layers }
    }

    /// Extracts the plain-data form of the network: layer sizes, per-layer
    /// activation tags, and the flat parameter vector of
    /// [`Mlp::parameters`].
    pub fn to_portable(&self) -> PortableMlp {
        let mut layer_sizes = Vec::with_capacity(self.layers.len() + 1);
        layer_sizes.push(self.input_dim() as u32);
        for layer in &self.layers {
            layer_sizes.push(layer.output_dim() as u32);
        }
        PortableMlp {
            layer_sizes,
            activations: self.layers.iter().map(|l| l.activation().tag()).collect(),
            parameters: self.parameters(),
        }
    }

    /// Rebuilds a network from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when the sizes, activation tags, and parameter
    /// count are mutually inconsistent.
    pub fn from_portable(portable: &PortableMlp) -> Result<Mlp, String> {
        if portable.layer_sizes.len() < 2 {
            return Err("an MLP needs at least input and output sizes".to_string());
        }
        if portable.layer_sizes.contains(&0) {
            return Err("layer sizes must be positive".to_string());
        }
        if portable.activations.len() + 1 != portable.layer_sizes.len() {
            return Err(format!(
                "{} layer sizes require {} activations, got {}",
                portable.layer_sizes.len(),
                portable.layer_sizes.len() - 1,
                portable.activations.len()
            ));
        }
        let mut layers = Vec::with_capacity(portable.activations.len());
        for (i, &tag) in portable.activations.iter().enumerate() {
            let activation =
                Activation::from_tag(tag).ok_or_else(|| format!("unknown activation tag {tag}"))?;
            layers.push(DenseLayer::zeros(
                portable.layer_sizes[i] as usize,
                portable.layer_sizes[i + 1] as usize,
                activation,
            ));
        }
        let mut mlp = Mlp::from_layers(layers);
        if portable.parameters.len() != mlp.num_parameters() {
            return Err(format!(
                "architecture has {} parameters but {} were stored",
                mlp.num_parameters(),
                portable.parameters.len()
            ));
        }
        mlp.set_parameters(&portable.parameters);
        Ok(mlp)
    }

    /// Moves this network's parameters towards `target`'s by the soft-update
    /// rule `θ ← (1 − τ)·θ + τ·θ_target` (used for DDPG target networks).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different architectures.
    pub fn soft_update_from(&mut self, target: &Mlp, tau: f64) {
        assert_eq!(
            self.num_parameters(),
            target.num_parameters(),
            "soft update requires identical architectures"
        );
        let mine = self.parameters();
        let theirs = target.parameters();
        let mixed: Vec<f64> = mine
            .iter()
            .zip(theirs.iter())
            .map(|(a, b)| (1.0 - tau) * a + tau * b)
            .collect();
        self.set_parameters(&mixed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Mlp {
        let mut rng = SmallRng::seed_from_u64(seed);
        Mlp::new(
            &[2, 8, 8, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
    }

    #[test]
    fn batched_forward_is_bit_identical_to_scalar() {
        let mut rng = SmallRng::seed_from_u64(31);
        // A network wide enough that every layer mixes lanes and rows.
        let net = Mlp::new(
            &[3, 24, 16, 2],
            Activation::Tanh,
            Activation::Tanh,
            &mut rng,
        );
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        // Lane counts spanning sub-lane batches, exactly one sweep, and
        // ragged multi-sweep tails.
        for n in [1usize, 3, 8, 9, 17] {
            let inputs: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    vec![
                        i as f64 * 0.31 - 1.7,
                        (i as f64 * 0.17).sin(),
                        1.0 - i as f64 * 0.09,
                    ]
                })
                .collect();
            net.forward_batch_into(&inputs, &mut scratch, &mut out);
            assert_eq!(out.len(), n);
            for (input, output) in inputs.iter().zip(out.iter()) {
                let mut reference_scratch = MlpScratch::new();
                let reference = net.forward_into(input, &mut reference_scratch);
                assert_eq!(output.len(), reference.len());
                for (a, b) in output.iter().zip(reference.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane diverged at n={n}");
                }
            }
        }
        // Empty batches are fine and clear the output spine.
        net.forward_batch_into(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn batched_forward_rejects_wrong_dimension() {
        let net = small_net(1);
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        net.forward_batch_into(&[vec![1.0]], &mut scratch, &mut out);
    }

    #[test]
    fn shapes_and_parameter_roundtrip() {
        let net = small_net(0);
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.num_parameters(), 2 * 8 + 8 + 8 * 8 + 8 + 8 + 1);
        let params = net.parameters();
        assert_eq!(params.len(), net.num_parameters());
        let mut other = small_net(1);
        assert_ne!(other.forward(&[0.3, -0.4]), net.forward(&[0.3, -0.4]));
        other.set_parameters(&params);
        assert_eq!(other.forward(&[0.3, -0.4]), net.forward(&[0.3, -0.4]));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = small_net(2);
        let input = [0.4, -0.7];
        let target = 0.3;
        // Loss L = 0.5 (f(x) − target)².
        let loss = |net: &Mlp| {
            let y = net.forward(&input)[0];
            0.5 * (y - target) * (y - target)
        };
        let cache = net.forward_cached(&input);
        let y = cache.output()[0];
        let (grads, input_grad) = net.backward(&cache, &[y - target]);
        let flat = net.flatten_gradients(&grads);
        let params = net.parameters();
        let h = 1e-6;
        for index in [0usize, 3, 10, params.len() - 1] {
            let mut plus = params.clone();
            plus[index] += h;
            let mut minus = params.clone();
            minus[index] -= h;
            net.set_parameters(&plus);
            let lp = loss(&net);
            net.set_parameters(&minus);
            let lm = loss(&net);
            net.set_parameters(&params);
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - flat[index]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {index}: numeric {numeric} vs analytic {}",
                flat[index]
            );
        }
        // Input gradient via finite differences.
        for dim in 0..2 {
            let mut plus = input;
            plus[dim] += h;
            let mut minus = input;
            minus[dim] -= h;
            let numeric =
                (loss_at(&net, &plus, target) - loss_at(&net, &minus, target)) / (2.0 * h);
            assert!((numeric - input_grad[dim]).abs() < 1e-4 * (1.0 + numeric.abs()));
        }
    }

    fn loss_at(net: &Mlp, input: &[f64], target: f64) -> f64 {
        let y = net.forward(input)[0];
        0.5 * (y - target) * (y - target)
    }

    #[test]
    fn sgd_reduces_loss_on_a_regression_task() {
        let mut net = small_net(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let samples: Vec<([f64; 2], f64)> = (0..64)
            .map(|_| {
                let x = rng.gen::<f64>() * 2.0 - 1.0;
                let y = rng.gen::<f64>() * 2.0 - 1.0;
                ([x, y], 0.5 * x - 0.3 * y)
            })
            .collect();
        let loss_of = |net: &Mlp| -> f64 {
            samples
                .iter()
                .map(|(x, t)| {
                    let y = net.forward(x)[0];
                    0.5 * (y - t) * (y - t)
                })
                .sum::<f64>()
                / samples.len() as f64
        };
        let before = loss_of(&net);
        for _ in 0..300 {
            for (x, t) in &samples {
                let cache = net.forward_cached(x);
                let y = cache.output()[0];
                let (grads, _) = net.backward(&cache, &[y - t]);
                net.apply_gradients(&grads, 0.05);
            }
        }
        let after = loss_of(&net);
        assert!(
            after < before * 0.1,
            "loss should drop markedly: {before} -> {after}"
        );
    }

    #[test]
    fn soft_update_interpolates_parameters() {
        let a = small_net(5);
        let b = small_net(6);
        let mut target = a.clone();
        target.soft_update_from(&b, 0.25);
        let pa = a.parameters();
        let pb = b.parameters();
        let pt = target.parameters();
        for i in 0..pa.len() {
            assert!((pt[i] - (0.75 * pa[i] + 0.25 * pb[i])).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_dimension_panics() {
        let _ = small_net(7).forward(&[1.0]);
    }

    #[test]
    fn forward_into_matches_cached_forward_bitwise() {
        let net = small_net(8);
        let mut scratch = MlpScratch::new();
        for input in [[0.0, 0.0], [0.4, -0.7], [1.9, 1.9], [-2.0, 0.3]] {
            let fast = net.forward_into(&input, &mut scratch).to_vec();
            let reference = net.forward_cached(&input).output().to_vec();
            assert_eq!(fast.len(), reference.len());
            for (a, b) in fast.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // The scratch survives a network of a different shape.
        let mut rng = SmallRng::seed_from_u64(9);
        let wide = Mlp::new(
            &[2, 32, 3],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let out = wide.forward_into(&[0.1, 0.2], &mut scratch);
        assert_eq!(out.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_forward_is_deterministic_and_finite(seed in 0u64..100, x in -2.0..2.0f64, y in -2.0..2.0f64) {
            let net = small_net(seed);
            let a = net.forward(&[x, y]);
            let b = net.forward(&[x, y]);
            prop_assert_eq!(a.clone(), b);
            prop_assert!(a[0].is_finite());
        }
    }
}
