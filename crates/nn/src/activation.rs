//! Element-wise activation functions.

/// Activation function applied element-wise by a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Hyperbolic tangent.
    #[default]
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (linear output layer).
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of the *pre-activation*
    /// input `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        }
    }

    /// Stable one-byte tag used by the artifact serialization format.
    ///
    /// Tags are part of the on-disk format: never renumber existing
    /// variants, only append.
    pub fn tag(&self) -> u8 {
        match self {
            Activation::Tanh => 0,
            Activation::Relu => 1,
            Activation::Identity => 2,
        }
    }

    /// Inverse of [`Activation::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Activation> {
        match tag {
            0 => Some(Activation::Tanh),
            1 => Some(Activation::Relu),
            2 => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn values_match_definitions() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(-3.5), -3.5);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-15);
        assert!(Activation::Tanh.apply(10.0) < 1.0);
        assert_eq!(Activation::Relu.derivative(-0.1), 0.0);
        assert_eq!(Activation::Relu.derivative(0.1), 1.0);
        assert_eq!(Activation::Identity.derivative(7.0), 1.0);
        assert_eq!(Activation::default(), Activation::Tanh);
        assert_eq!(Activation::Tanh.name(), "tanh");
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::Identity.name(), "identity");
    }

    proptest! {
        #[test]
        fn prop_derivative_matches_finite_difference(x in -3.0..3.0f64) {
            let h = 1e-6;
            for act in [Activation::Tanh, Activation::Identity] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                prop_assert!((numeric - act.derivative(x)).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_tanh_is_bounded(x in -100.0..100.0f64) {
            let y = Activation::Tanh.apply(x);
            prop_assert!((-1.0..=1.0).contains(&y));
        }
    }
}
