//! First-order optimizers operating on flat parameter vectors.

/// Adam optimizer state.
///
/// # Examples
///
/// ```
/// use vrl_nn::Adam;
///
/// let mut opt = Adam::new(2, 0.1);
/// let mut params = vec![1.0, -1.0];
/// for _ in 0..200 {
///     // minimize f(p) = p0² + p1²  (gradient 2p)
///     let grads: Vec<f64> = params.iter().map(|p| 2.0 * p).collect();
///     opt.step(&mut params, &grads);
/// }
/// assert!(params.iter().all(|p| p.abs() < 1e-2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    first_moment: Vec<f64>,
    second_moment: Vec<f64>,
    step_count: u64,
}

impl Adam {
    /// Creates an Adam optimizer for `dim` parameters with the given learning
    /// rate and standard momentum constants (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn new(dim: usize, learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            first_moment: vec![0.0; dim],
            second_moment: vec![0.0; dim],
            step_count: 0,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Performs one descent step in place.
    ///
    /// # Panics
    ///
    /// Panics if the parameter or gradient length differs from the optimizer
    /// dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            self.first_moment.len(),
            "parameter length mismatch"
        );
        assert_eq!(
            grads.len(),
            self.first_moment.len(),
            "gradient length mismatch"
        );
        self.step_count += 1;
        let t = self.step_count as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            self.first_moment[i] =
                self.beta1 * self.first_moment[i] + (1.0 - self.beta1) * grads[i];
            self.second_moment[i] =
                self.beta2 * self.second_moment[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.first_moment[i] / bias1;
            let v_hat = self.second_moment[i] / bias2;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer for `dim` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(dim: usize, learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must lie in [0, 1)"
        );
        Sgd {
            learning_rate,
            momentum,
            velocity: vec![0.0; dim],
        }
    }

    /// Performs one descent step in place.
    ///
    /// # Panics
    ///
    /// Panics if the parameter or gradient length differs from the optimizer
    /// dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "parameter length mismatch"
        );
        assert_eq!(grads.len(), self.velocity.len(), "gradient length mismatch");
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.learning_rate * grads[i];
            params[i] += self.velocity[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &[f64]) -> Vec<f64> {
        p.iter().map(|x| 2.0 * x).collect()
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut opt = Adam::new(3, 0.05);
        let mut p = vec![2.0, -3.0, 0.5];
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-2), "{p:?}");
        assert_eq!(opt.steps(), 500);
        assert!((opt.learning_rate() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn sgd_with_momentum_minimizes_a_quadratic() {
        let mut opt = Sgd::new(2, 0.05, 0.9);
        let mut p = vec![1.0, -1.0];
        for _ in 0..400 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-2), "{p:?}");
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn adam_rejects_mismatched_lengths() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0; 3];
        opt.step(&mut p, &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_rejected() {
        let _ = Adam::new(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must lie in [0, 1)")]
    fn bad_momentum_rejected() {
        let _ = Sgd::new(1, 0.1, 1.0);
    }
}
