//! A small, dependency-free neural-network substrate: multi-layer perceptrons
//! with manual backpropagation and first-order optimizers.
//!
//! Neural policies in this framework are deliberately ordinary feed-forward
//! networks — the paper treats the network purely as a *black-box oracle*
//! whose behaviour is distilled into a verifiable program, so nothing more
//! exotic is needed.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use vrl_nn::{Activation, Adam, Mlp};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(net.num_parameters(), 1e-2);
//! // one gradient step towards fitting f(0.5) = 0.25
//! let cache = net.forward_cached(&[0.5]);
//! let error = cache.output()[0] - 0.25;
//! let (grads, _) = net.backward(&cache, &[error]);
//! let mut params = net.parameters();
//! opt.step(&mut params, &net.flatten_gradients(&grads));
//! net.set_parameters(&params);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod activation;
mod mlp;
mod optimizer;

pub use activation::Activation;
pub use mlp::{DenseLayer, ForwardCache, LayerGradient, Mlp, MlpScratch, PortableMlp, BATCH_LANES};
pub use optimizer::{Adam, Sgd};
