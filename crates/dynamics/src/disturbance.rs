//! Bounded, non-deterministic environment disturbances.
//!
//! The paper (Sec. 3, "Environment Disturbance") extends the dynamics to
//! `ṡ = f(s, a) + d` where `d` is a vector of bounded non-deterministic
//! disturbances.  Simulation samples `d` uniformly within its bounds, while
//! the verifier treats `d` as an adversarial interval so that invariants
//! hold for *every* admissible disturbance (verification condition (10)).

use rand::Rng;
use vrl_poly::Interval;

/// Per-dimension bounded disturbance `d ∈ [lower, upper]` added to the state
/// derivative.
///
/// # Examples
///
/// ```
/// use vrl_dynamics::Disturbance;
///
/// let d = Disturbance::symmetric(&[0.0, 0.1]);
/// assert_eq!(d.lower(), &[0.0, -0.1]);
/// assert!(!d.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Disturbance {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Disturbance {
    /// Creates a disturbance with explicit per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors have different lengths or any lower bound
    /// exceeds the corresponding upper bound.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(
            lower.len(),
            upper.len(),
            "bound vectors must have equal length"
        );
        for (i, (lo, hi)) in lower.iter().zip(upper.iter()).enumerate() {
            assert!(
                lo <= hi,
                "disturbance lower bound {lo} exceeds upper bound {hi} in dimension {i}"
            );
        }
        Disturbance { lower, upper }
    }

    /// Creates the symmetric disturbance `[-magnitude_i, magnitude_i]`.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude is negative.
    pub fn symmetric(magnitudes: &[f64]) -> Self {
        assert!(
            magnitudes.iter().all(|m| *m >= 0.0),
            "disturbance magnitudes must be non-negative"
        );
        Disturbance::new(magnitudes.iter().map(|m| -m).collect(), magnitudes.to_vec())
    }

    /// The zero disturbance of the given dimension.
    pub fn zero(dim: usize) -> Self {
        Disturbance::new(vec![0.0; dim], vec![0.0; dim])
    }

    /// Dimension of the disturbance vector.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Returns true when every bound is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.lower.iter().all(|x| *x == 0.0) && self.upper.iter().all(|x| *x == 0.0)
    }

    /// Samples a disturbance uniformly within the bounds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(lo, hi)| {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            })
            .collect()
    }

    /// Returns the per-dimension bounds as [`Interval`]s for the verifier's
    /// adversarial treatment.
    pub fn to_intervals(&self) -> Vec<Interval> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(lo, hi)| Interval::new(*lo, *hi))
            .collect()
    }

    /// Maximum absolute disturbance magnitude over all dimensions.
    pub fn max_magnitude(&self) -> f64 {
        self.lower
            .iter()
            .chain(self.upper.iter())
            .fold(0.0, |m, x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_accessors() {
        let d = Disturbance::new(vec![-0.1, 0.0], vec![0.2, 0.0]);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.lower(), &[-0.1, 0.0]);
        assert_eq!(d.upper(), &[0.2, 0.0]);
        assert!(!d.is_zero());
        assert!((d.max_magnitude() - 0.2).abs() < 1e-15);
        assert!(Disturbance::zero(3).is_zero());
        let s = Disturbance::symmetric(&[0.5]);
        assert_eq!(s.lower(), &[-0.5]);
        assert_eq!(s.upper(), &[0.5]);
    }

    #[test]
    fn intervals_reflect_bounds() {
        let d = Disturbance::symmetric(&[0.1, 0.3]);
        let ivs = d.to_intervals();
        assert_eq!(ivs[0].lo(), -0.1);
        assert_eq!(ivs[1].hi(), 0.3);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = Disturbance::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn sampling_respects_bounds_and_degenerate_dims() {
        let d = Disturbance::new(vec![-0.5, 0.25], vec![0.5, 0.25]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!(s[0] >= -0.5 && s[0] <= 0.5);
            assert_eq!(s[1], 0.25);
        }
    }

    proptest! {
        #[test]
        fn prop_samples_within_intervals(mags in proptest::collection::vec(0.0..2.0f64, 1..5), seed in 0u64..500) {
            let d = Disturbance::symmetric(&mags);
            let ivs = d.to_intervals();
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = d.sample(&mut rng);
            for (x, iv) in s.iter().zip(ivs.iter()) {
                prop_assert!(iv.contains(*x));
            }
        }
    }
}
