//! Environment substrate for the verifiable-RL framework.
//!
//! This crate models the paper's environment context `C[·]`: an infinite
//! state transition system over continuous states with a hole for a control
//! policy (Sec. 3).  It provides:
//!
//! * [`PolyDynamics`] — polynomial vector fields `ṡ = f(s, a)`;
//! * [`Integrator`] — Euler (the paper's transition relation) and RK4;
//! * [`BoxRegion`] / [`SafetySpec`] — initial sets `S0` and unsafe sets `Su`;
//! * [`Disturbance`] — bounded non-deterministic noise `d` in `ṡ = f(s,a)+d`;
//! * [`Policy`] — the policy abstraction shared by neural networks,
//!   synthesized programs and shields;
//! * [`EnvironmentContext`] — the assembled transition system with rollouts,
//!   rewards, and symbolic closed-loop successor construction used by the
//!   verifier;
//! * [`Trajectory`] — finite rollouts with safety and performance metrics.
//!
//! # Examples
//!
//! ```
//! use vrl_dynamics::{BoxRegion, ConstantPolicy, EnvironmentContext, PolyDynamics, SafetySpec};
//! use vrl_poly::Polynomial;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
//! let env = EnvironmentContext::new(
//!     "toy",
//!     dynamics,
//!     0.01,
//!     BoxRegion::symmetric(&[0.1]),
//!     SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
//! );
//! let mut rng = SmallRng::seed_from_u64(0);
//! let t = env.rollout(&ConstantPolicy::zeros(1), &[0.05], 10, &mut rng);
//! assert!(!t.violates(env.safety()));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod disturbance;
mod dynamics;
mod env;
mod integrator;
mod policy;
mod portable;
mod region;
mod trajectory;

pub use disturbance::Disturbance;
pub use dynamics::{ClosureDynamics, Dynamics, DynamicsError, PolyDynamics};
pub use env::{EnvironmentContext, RewardFn, SteadyFn};
pub use integrator::Integrator;
pub use policy::{ClosurePolicy, ConstantPolicy, LinearPolicy, Policy};
pub use portable::PortableEnvironment;
pub use region::{BoxRegion, SafetySpec};
pub use trajectory::Trajectory;
