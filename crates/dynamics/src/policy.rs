//! The control-policy abstraction shared by neural policies, synthesized
//! programs, and shields.

/// A deterministic control policy mapping an environment state to a control
/// action, i.e. the `π : Rⁿ → Rᵐ` of the paper.
///
/// Neural policies (`vrl-rl`), synthesized deterministic programs
/// (`vrl-synth`) and runtime shields (`vrl-shield`) all implement this trait,
/// which is what lets the shield transparently substitute for the raw neural
/// network inside an [`crate::EnvironmentContext`] rollout.
pub trait Policy {
    /// Dimension of the action vector this policy produces.
    fn action_dim(&self) -> usize;

    /// Computes the control action for `state`.
    fn action(&self, state: &[f64]) -> Vec<f64>;
}

impl<P: Policy + ?Sized> Policy for &P {
    fn action_dim(&self) -> usize {
        (**self).action_dim()
    }
    fn action(&self, state: &[f64]) -> Vec<f64> {
        (**self).action(state)
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn action_dim(&self) -> usize {
        (**self).action_dim()
    }
    fn action(&self, state: &[f64]) -> Vec<f64> {
        (**self).action(state)
    }
}

/// A policy that always emits the same action, useful as a baseline and in
/// tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantPolicy {
    action: Vec<f64>,
}

impl ConstantPolicy {
    /// Creates a policy that always returns `action`.
    pub fn new(action: Vec<f64>) -> Self {
        ConstantPolicy { action }
    }

    /// The zero policy of the given action dimension.
    pub fn zeros(action_dim: usize) -> Self {
        ConstantPolicy {
            action: vec![0.0; action_dim],
        }
    }
}

impl Policy for ConstantPolicy {
    fn action_dim(&self) -> usize {
        self.action.len()
    }
    fn action(&self, _state: &[f64]) -> Vec<f64> {
        self.action.clone()
    }
}

/// A policy defined by an arbitrary closure.
pub struct ClosurePolicy<F> {
    action_dim: usize,
    f: F,
}

impl<F> ClosurePolicy<F>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    /// Wraps a closure computing the action for a state.
    pub fn new(action_dim: usize, f: F) -> Self {
        ClosurePolicy { action_dim, f }
    }
}

impl<F> Policy for ClosurePolicy<F>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    fn action_dim(&self) -> usize {
        self.action_dim
    }
    fn action(&self, state: &[f64]) -> Vec<f64> {
        (self.f)(state)
    }
}

impl<F> std::fmt::Debug for ClosurePolicy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosurePolicy")
            .field("action_dim", &self.action_dim)
            .finish()
    }
}

/// A simple linear state-feedback policy `a = K s` (one row of gains per
/// action dimension), provided as a baseline controller.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPolicy {
    gains: Vec<Vec<f64>>,
}

impl LinearPolicy {
    /// Creates a linear policy from per-action gain rows.
    ///
    /// # Panics
    ///
    /// Panics if the gain rows have differing lengths.
    pub fn new(gains: Vec<Vec<f64>>) -> Self {
        if let Some(first) = gains.first() {
            assert!(
                gains.iter().all(|g| g.len() == first.len()),
                "all gain rows must have the same length"
            );
        }
        LinearPolicy { gains }
    }

    /// The gain rows.
    pub fn gains(&self) -> &[Vec<f64>] {
        &self.gains
    }

    /// Dimension of the state this policy expects.
    pub fn state_dim(&self) -> usize {
        self.gains.first().map_or(0, Vec::len)
    }
}

impl Policy for LinearPolicy {
    fn action_dim(&self) -> usize {
        self.gains.len()
    }
    fn action(&self, state: &[f64]) -> Vec<f64> {
        self.gains
            .iter()
            .map(|row| row.iter().zip(state.iter()).map(|(k, s)| k * s).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_policy_ignores_state() {
        let p = ConstantPolicy::new(vec![1.0, -2.0]);
        assert_eq!(p.action_dim(), 2);
        assert_eq!(p.action(&[9.0]), vec![1.0, -2.0]);
        assert_eq!(ConstantPolicy::zeros(3).action(&[]), vec![0.0; 3]);
    }

    #[test]
    fn closure_policy_wraps_functions() {
        let p = ClosurePolicy::new(1, |s: &[f64]| vec![-s[0]]);
        assert_eq!(p.action(&[2.0]), vec![-2.0]);
        assert_eq!(p.action_dim(), 1);
        assert!(format!("{p:?}").contains("ClosurePolicy"));
    }

    #[test]
    fn linear_policy_computes_feedback() {
        let p = LinearPolicy::new(vec![vec![-12.05, -5.87]]);
        let a = p.action(&[0.1, -0.2]);
        assert!((a[0] - (-12.05 * 0.1 + -5.87 * -0.2)).abs() < 1e-12);
        assert_eq!(p.state_dim(), 2);
        assert_eq!(p.action_dim(), 1);
        assert_eq!(p.gains()[0].len(), 2);
    }

    #[test]
    fn references_and_boxes_are_policies() {
        fn takes_policy<P: Policy>(p: P, state: &[f64]) -> Vec<f64> {
            p.action(state)
        }
        let p = ConstantPolicy::new(vec![3.0]);
        assert_eq!(takes_policy(&p, &[0.0]), vec![3.0]);
        let boxed: Box<dyn Policy> = Box::new(p);
        assert_eq!(takes_policy(&boxed, &[0.0]), vec![3.0]);
        assert_eq!(boxed.action_dim(), 1);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn linear_policy_rejects_ragged_gains() {
        let _ = LinearPolicy::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
