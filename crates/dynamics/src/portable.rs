//! Portable (plain-data) form of an [`EnvironmentContext`] for artifact
//! persistence.
//!
//! Everything structural about an environment round-trips exactly: dynamics
//! polynomials, time step, integrator, initial region, safety specification
//! (safe box plus obstacles), disturbance bounds, action bounds, variable
//! names, and horizon.
//!
//! Two fields are deliberately **not** portable, because they are arbitrary
//! closures: the reward function and the steady-state predicate.
//! [`EnvironmentContext::from_portable`] restores the defaults documented on
//! [`EnvironmentContext::new`].  This is sound for deployment: the serving
//! hot path (shield prediction and safety checks) never consults either
//! closure — they only matter for *training* and *evaluation reporting*,
//! which operate on live environments.

use crate::{BoxRegion, Disturbance, EnvironmentContext, Integrator, PolyDynamics, SafetySpec};
use vrl_poly::{Polynomial, PortablePolynomial};

/// Plain-data form of an [`EnvironmentContext`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortableEnvironment {
    /// Environment name (e.g. `"pendulum"`).
    pub name: String,
    /// Human-readable state-variable names (one per state dimension).
    pub variable_names: Vec<String>,
    /// State dimension `n`.
    pub state_dim: u32,
    /// Action dimension `m`.
    pub action_dim: u32,
    /// Dynamics `ṡ = f(s, a)`: one polynomial per state dimension over
    /// `n + m` variables (states first, then actions).
    pub derivatives: Vec<PortablePolynomial>,
    /// Discretization time step `Δt`.
    pub dt: f64,
    /// Simulation integrator tag (see [`Integrator::tag`]).
    pub integrator: u8,
    /// Initial region lower bounds.
    pub init_lows: Vec<f64>,
    /// Initial region upper bounds.
    pub init_highs: Vec<f64>,
    /// Safe box lower bounds.
    pub safe_lows: Vec<f64>,
    /// Safe box upper bounds.
    pub safe_highs: Vec<f64>,
    /// Obstacle boxes (unsafe regions inside the safe box), as
    /// `(lows, highs)` pairs.
    pub obstacles: Vec<(Vec<f64>, Vec<f64>)>,
    /// Disturbance lower bounds.
    pub disturbance_lower: Vec<f64>,
    /// Disturbance upper bounds.
    pub disturbance_upper: Vec<f64>,
    /// Per-dimension action lower bounds (may be `-inf`).
    pub action_low: Vec<f64>,
    /// Per-dimension action upper bounds (may be `+inf`).
    pub action_high: Vec<f64>,
    /// Episode horizon.
    pub horizon: u64,
}

fn check_dim(what: &str, len: usize, expected: usize) -> Result<(), String> {
    if len != expected {
        return Err(format!("{what} has dimension {len}, expected {expected}"));
    }
    Ok(())
}

fn box_from_bounds(
    what: &str,
    lows: &[f64],
    highs: &[f64],
    dim: usize,
) -> Result<BoxRegion, String> {
    check_dim(&format!("{what} lower bounds"), lows.len(), dim)?;
    check_dim(&format!("{what} upper bounds"), highs.len(), dim)?;
    for (l, h) in lows.iter().zip(highs.iter()) {
        if l > h || l.is_nan() || h.is_nan() {
            return Err(format!("{what} has inverted bounds [{l}, {h}]"));
        }
    }
    Ok(BoxRegion::new(lows.to_vec(), highs.to_vec()))
}

impl EnvironmentContext {
    /// Extracts the plain-data form of this environment.
    ///
    /// The reward function and steady-state predicate are closures and are
    /// **not** captured; see the module documentation.
    pub fn to_portable(&self) -> PortableEnvironment {
        PortableEnvironment {
            name: self.name().to_string(),
            variable_names: self
                .variable_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            state_dim: self.state_dim() as u32,
            action_dim: self.action_dim() as u32,
            derivatives: self
                .dynamics()
                .derivatives()
                .iter()
                .map(Polynomial::to_portable)
                .collect(),
            dt: self.dt(),
            integrator: self.integrator().tag(),
            init_lows: self.init().lows().to_vec(),
            init_highs: self.init().highs().to_vec(),
            safe_lows: self.safety().safe_box().lows().to_vec(),
            safe_highs: self.safety().safe_box().highs().to_vec(),
            obstacles: self
                .safety()
                .obstacles()
                .iter()
                .map(|o| (o.lows().to_vec(), o.highs().to_vec()))
                .collect(),
            disturbance_lower: self.disturbance().lower().to_vec(),
            disturbance_upper: self.disturbance().upper().to_vec(),
            action_low: self.action_low().to_vec(),
            action_high: self.action_high().to_vec(),
            horizon: self.horizon() as u64,
        }
    }

    /// Rebuilds an environment from its plain-data form, with the default
    /// reward function and steady-state predicate of
    /// [`EnvironmentContext::new`].
    ///
    /// # Errors
    ///
    /// Returns a message when any dimension, bound, or tag is inconsistent.
    pub fn from_portable(portable: &PortableEnvironment) -> Result<EnvironmentContext, String> {
        let n = portable.state_dim as usize;
        let m = portable.action_dim as usize;
        if n == 0 {
            return Err("state dimension must be positive".to_string());
        }
        if portable.dt <= 0.0 || portable.dt.is_nan() {
            return Err(format!("time step must be positive, got {}", portable.dt));
        }
        if portable.horizon == 0 {
            return Err("horizon must be positive".to_string());
        }
        check_dim("derivative vector", portable.derivatives.len(), n)?;
        let derivatives = portable
            .derivatives
            .iter()
            .map(Polynomial::from_portable)
            .collect::<Result<Vec<_>, _>>()?;
        for d in &derivatives {
            check_dim("dynamics polynomial variables", d.nvars(), n + m)?;
        }
        let dynamics = PolyDynamics::new(n, m, derivatives).map_err(|e| e.to_string())?;
        let integrator = Integrator::from_tag(portable.integrator)
            .ok_or_else(|| format!("unknown integrator tag {}", portable.integrator))?;
        let init = box_from_bounds(
            "initial region",
            &portable.init_lows,
            &portable.init_highs,
            n,
        )?;
        let safe = box_from_bounds("safe box", &portable.safe_lows, &portable.safe_highs, n)?;
        let mut safety = SafetySpec::inside(safe);
        for (lows, highs) in &portable.obstacles {
            safety = safety.with_obstacle(box_from_bounds("obstacle", lows, highs, n)?);
        }
        check_dim(
            "disturbance lower bounds",
            portable.disturbance_lower.len(),
            n,
        )?;
        check_dim(
            "disturbance upper bounds",
            portable.disturbance_upper.len(),
            n,
        )?;
        for (l, h) in portable
            .disturbance_lower
            .iter()
            .zip(portable.disturbance_upper.iter())
        {
            if l > h || l.is_nan() || h.is_nan() {
                return Err(format!("disturbance has inverted bounds [{l}, {h}]"));
            }
        }
        check_dim("action lower bounds", portable.action_low.len(), m)?;
        check_dim("action upper bounds", portable.action_high.len(), m)?;
        check_dim("variable names", portable.variable_names.len(), n)?;
        let names: Vec<&str> = portable.variable_names.iter().map(String::as_str).collect();
        Ok(
            EnvironmentContext::new(portable.name.clone(), dynamics, portable.dt, init, safety)
                .with_integrator(integrator)
                .with_disturbance(Disturbance::new(
                    portable.disturbance_lower.clone(),
                    portable.disturbance_upper.clone(),
                ))
                .with_action_bounds(portable.action_low.clone(), portable.action_high.clone())
                .with_variable_names(&names)
                .with_horizon(portable.horizon as usize),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        EnvironmentContext::new(
            "double-integrator",
            dynamics,
            0.02,
            BoxRegion::symmetric(&[0.5, 0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0]))
                .with_obstacle(BoxRegion::new(vec![1.0, -0.5], vec![1.5, 0.5])),
        )
        .with_integrator(Integrator::RungeKutta4)
        .with_disturbance(Disturbance::symmetric(&[0.0, 0.01]))
        .with_action_bounds(vec![-3.0], vec![3.0])
        .with_variable_names(&["pos", "vel"])
        .with_horizon(1234)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let env = sample_env();
        let portable = env.to_portable();
        let back = EnvironmentContext::from_portable(&portable).unwrap();
        assert_eq!(back.name(), env.name());
        assert_eq!(back.variable_names(), env.variable_names());
        assert_eq!(back.state_dim(), env.state_dim());
        assert_eq!(back.action_dim(), env.action_dim());
        assert_eq!(back.dt(), env.dt());
        assert_eq!(back.integrator(), env.integrator());
        assert_eq!(back.init().lows(), env.init().lows());
        assert_eq!(back.safety().obstacles().len(), 1);
        assert_eq!(back.action_low(), env.action_low());
        assert_eq!(back.horizon(), env.horizon());
        // The transition function is preserved exactly.
        let s = [0.3, -0.2];
        let a = [1.7];
        assert_eq!(
            back.step_deterministic(&s, &a),
            env.step_deterministic(&s, &a)
        );
        // Obstacle states are still unsafe.
        assert!(back.is_unsafe(&[1.2, 0.0]));
        assert!(!back.is_unsafe(&[0.0, 0.0]));
    }

    #[test]
    fn unbounded_actions_round_trip() {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "unbounded",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.1]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        );
        let back = EnvironmentContext::from_portable(&env.to_portable()).unwrap();
        assert_eq!(back.action_low(), &[f64::NEG_INFINITY]);
        assert_eq!(back.action_high(), &[f64::INFINITY]);
    }

    #[test]
    fn invalid_portable_environments_are_rejected() {
        let env = sample_env();
        let mut bad = env.to_portable();
        bad.integrator = 99;
        assert!(EnvironmentContext::from_portable(&bad).is_err());

        let mut bad = env.to_portable();
        bad.dt = 0.0;
        assert!(EnvironmentContext::from_portable(&bad).is_err());

        let mut bad = env.to_portable();
        bad.init_lows = vec![0.0];
        assert!(EnvironmentContext::from_portable(&bad).is_err());

        let mut bad = env.to_portable();
        bad.derivatives.pop();
        assert!(EnvironmentContext::from_portable(&bad).is_err());

        let mut bad = env.to_portable();
        bad.safe_lows[0] = 5.0;
        assert!(EnvironmentContext::from_portable(&bad).is_err());
    }
}
