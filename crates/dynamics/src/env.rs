//! The environment context `C[·]` of the paper: an infinite state transition
//! system with a hole for the control policy.

use crate::{
    BoxRegion, Disturbance, Dynamics, Integrator, Policy, PolyDynamics, SafetySpec, Trajectory,
};
use rand::Rng;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use vrl_poly::{BatchPoints, Polynomial};

/// Reusable per-thread buffers for [`EnvironmentContext::step_deterministic_batch`]:
/// the concatenated `(state, clamped action)` lanes, the component-major
/// derivative values, and one row-assembly buffer.
#[derive(Default)]
struct StepBatchScratch {
    joint: BatchPoints,
    derivative: Vec<f64>,
    row: Vec<f64>,
}

thread_local! {
    static STEP_BATCH_SCRATCH: RefCell<StepBatchScratch> = RefCell::new(StepBatchScratch::default());
}

/// Reward function type: `r(s, a)`.
pub type RewardFn = Arc<dyn Fn(&[f64], &[f64]) -> f64 + Send + Sync>;

/// Steady-state predicate used for the Table 1 performance metric.
pub type SteadyFn = Arc<dyn Fn(&[f64]) -> bool + Send + Sync>;

/// An environment context `C[·] = (X, A, S, S0, Su, T_t[·], f, r)` (Sec. 3).
///
/// The context packages polynomial dynamics, the discretization time step,
/// the initial state set `S0`, the safety specification (whose complement is
/// `Su`), bounded disturbances, action saturation bounds, a reward function
/// for RL training, and a steady-state predicate for performance reporting.
/// The "hole" `[·]` is filled at rollout time by any [`Policy`].
///
/// # Examples
///
/// ```
/// use vrl_dynamics::{BoxRegion, ConstantPolicy, EnvironmentContext, PolyDynamics, SafetySpec};
/// use vrl_poly::Polynomial;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// // ẋ = a, keep |x| < 1, start in |x| ≤ 0.1
/// let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
/// let env = EnvironmentContext::new(
///     "toy",
///     dynamics,
///     0.01,
///     BoxRegion::symmetric(&[0.1]),
///     SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
/// );
/// let mut rng = SmallRng::seed_from_u64(0);
/// let start = env.sample_initial(&mut rng);
/// let trajectory = env.rollout(&ConstantPolicy::zeros(1), &start, 100, &mut rng);
/// assert_eq!(trajectory.len(), 100);
/// ```
#[derive(Clone)]
pub struct EnvironmentContext {
    name: String,
    variable_names: Vec<String>,
    dynamics: PolyDynamics,
    dt: f64,
    integrator: Integrator,
    init: BoxRegion,
    safety: SafetySpec,
    disturbance: Disturbance,
    action_low: Vec<f64>,
    action_high: Vec<f64>,
    reward: RewardFn,
    steady: SteadyFn,
    horizon: usize,
}

impl EnvironmentContext {
    /// Creates an environment with sensible defaults: Euler integration, no
    /// disturbance, unbounded actions, a quadratic regulation reward
    /// `-(‖s‖² + 0.01‖a‖²)` with a large penalty on unsafe states, a steady
    /// predicate `‖s‖∞ ≤ 0.05`, and a 5000-step horizon (the episode length
    /// used throughout the paper's evaluation).
    ///
    /// # Panics
    ///
    /// Panics if the initial region or safety spec dimension differs from the
    /// dynamics state dimension, or if `dt <= 0`.
    pub fn new(
        name: impl Into<String>,
        dynamics: PolyDynamics,
        dt: f64,
        init: BoxRegion,
        safety: SafetySpec,
    ) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        let n = dynamics.state_dim();
        let m = dynamics.action_dim();
        assert_eq!(
            init.dim(),
            n,
            "initial region dimension must match the dynamics"
        );
        assert_eq!(
            safety.dim(),
            n,
            "safety spec dimension must match the dynamics"
        );
        let safety_for_reward = safety.clone();
        let default_reward: RewardFn = Arc::new(move |s: &[f64], a: &[f64]| {
            if safety_for_reward.is_unsafe(s) {
                -100.0
            } else {
                let state_cost: f64 = s.iter().map(|x| x * x).sum();
                let action_cost: f64 = a.iter().map(|x| x * x).sum();
                -(state_cost + 0.01 * action_cost)
            }
        });
        let default_steady: SteadyFn = Arc::new(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.05));
        EnvironmentContext {
            name: name.into(),
            variable_names: (0..n).map(|i| format!("x{i}")).collect(),
            dynamics,
            dt,
            integrator: Integrator::Euler,
            init,
            safety,
            disturbance: Disturbance::zero(n),
            action_low: vec![f64::NEG_INFINITY; m],
            action_high: vec![f64::INFINITY; m],
            reward: default_reward,
            steady: default_steady,
            horizon: 5000,
        }
    }

    /// Replaces the integrator (simulation only; verification always reasons
    /// about the Euler transition relation, as the paper does).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Adds a bounded disturbance `d` to the dynamics.
    ///
    /// # Panics
    ///
    /// Panics if the disturbance dimension differs from the state dimension.
    pub fn with_disturbance(mut self, disturbance: Disturbance) -> Self {
        assert_eq!(
            disturbance.dim(),
            self.state_dim(),
            "disturbance dimension must match the state dimension"
        );
        self.disturbance = disturbance;
        self
    }

    /// Saturates actions to `[low_i, high_i]` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if the bound lengths differ from the action dimension.
    pub fn with_action_bounds(mut self, low: Vec<f64>, high: Vec<f64>) -> Self {
        assert_eq!(
            low.len(),
            self.action_dim(),
            "action bound dimension mismatch"
        );
        assert_eq!(
            high.len(),
            self.action_dim(),
            "action bound dimension mismatch"
        );
        self.action_low = low;
        self.action_high = high;
        self
    }

    /// Replaces the reward function.
    pub fn with_reward(
        mut self,
        reward: impl Fn(&[f64], &[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.reward = Arc::new(reward);
        self
    }

    /// Replaces the steady-state predicate.
    pub fn with_steady(mut self, steady: impl Fn(&[f64]) -> bool + Send + Sync + 'static) -> Self {
        self.steady = Arc::new(steady);
        self
    }

    /// Replaces the episode horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        self.horizon = horizon;
        self
    }

    /// Replaces the human-readable variable names used when pretty-printing
    /// synthesized programs and invariants.
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from the state dimension.
    pub fn with_variable_names(mut self, names: &[&str]) -> Self {
        assert_eq!(
            names.len(),
            self.state_dim(),
            "one name per state variable is required"
        );
        self.variable_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Returns a copy with a different safety specification (used when an
    /// already-trained controller is deployed in a changed environment, as in
    /// Sec. 2.2 and Table 3).
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the state dimension.
    pub fn with_safety(mut self, safety: SafetySpec) -> Self {
        assert_eq!(
            safety.dim(),
            self.state_dim(),
            "safety spec dimension mismatch"
        );
        self.safety = safety;
        self
    }

    /// Returns a copy with a different initial state region.
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the state dimension.
    pub fn with_init(mut self, init: BoxRegion) -> Self {
        assert_eq!(
            init.dim(),
            self.state_dim(),
            "initial region dimension mismatch"
        );
        self.init = init;
        self
    }

    /// Returns a copy with different dynamics (used by the Table 3
    /// environment-change experiments, e.g. a heavier pendulum).
    ///
    /// # Panics
    ///
    /// Panics if the state or action dimension changes.
    pub fn with_dynamics(mut self, dynamics: PolyDynamics) -> Self {
        assert_eq!(
            dynamics.state_dim(),
            self.state_dim(),
            "state dimension must not change"
        );
        assert_eq!(
            dynamics.action_dim(),
            self.action_dim(),
            "action dimension must not change"
        );
        self.dynamics = dynamics;
        self
    }

    /// Returns a copy with a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Environment name (e.g. `"pendulum"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable state variable names.
    pub fn variable_names(&self) -> Vec<&str> {
        self.variable_names.iter().map(String::as_str).collect()
    }

    /// The polynomial dynamics `f`.
    pub fn dynamics(&self) -> &PolyDynamics {
        &self.dynamics
    }

    /// Discretization time step `Δt`.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Simulation integrator.
    pub fn integrator(&self) -> Integrator {
        self.integrator
    }

    /// The initial state region `S0`.
    pub fn init(&self) -> &BoxRegion {
        &self.init
    }

    /// The safety specification (complement of `Su`).
    pub fn safety(&self) -> &SafetySpec {
        &self.safety
    }

    /// The bounded disturbance `d`.
    pub fn disturbance(&self) -> &Disturbance {
        &self.disturbance
    }

    /// Per-dimension action lower bounds.
    pub fn action_low(&self) -> &[f64] {
        &self.action_low
    }

    /// Per-dimension action upper bounds.
    pub fn action_high(&self) -> &[f64] {
        &self.action_high
    }

    /// Episode horizon used by [`EnvironmentContext::rollout_episode`].
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// State dimension `n`.
    pub fn state_dim(&self) -> usize {
        self.dynamics.state_dim()
    }

    /// Action dimension `m`.
    pub fn action_dim(&self) -> usize {
        self.dynamics.action_dim()
    }

    /// Clamps an action to the configured saturation bounds.
    pub fn clamp_action(&self, action: &[f64]) -> Vec<f64> {
        action
            .iter()
            .enumerate()
            .map(|(i, a)| a.clamp(self.action_low[i], self.action_high[i]))
            .collect()
    }

    /// Reward `r(s, a)`.
    pub fn reward(&self, state: &[f64], action: &[f64]) -> f64 {
        (self.reward)(state, action)
    }

    /// Returns true when `state` violates the safety specification.
    pub fn is_unsafe(&self, state: &[f64]) -> bool {
        self.safety.is_unsafe(state)
    }

    /// Returns true when `state` satisfies the steady-state predicate.
    pub fn is_steady(&self, state: &[f64]) -> bool {
        (self.steady)(state)
    }

    /// Samples an initial state uniformly from `S0`.
    pub fn sample_initial<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.init.sample(rng)
    }

    /// Deterministic one-step successor (no disturbance), with the action
    /// clamped to the saturation bounds.  This is the transition the shield
    /// uses to *predict* where a proposed action would lead.
    pub fn step_deterministic(&self, state: &[f64], action: &[f64]) -> Vec<f64> {
        let clamped = self.clamp_action(action);
        self.integrator
            .step(&self.dynamics, state, &clamped, self.dt)
    }

    /// Deterministic one-step successors for a whole batch of independent
    /// `(state, action)` pairs, written lane-for-lane into `next` (a
    /// [`BatchPoints`] over the state variables, reinitialized by this
    /// call).
    ///
    /// With the Euler integrator (the scheme shields predict with) the
    /// whole batch steps through **one** lane-parallel sweep of the
    /// compiled dynamics family — actions are clamped per lane, the
    /// concatenated `(state, action)` lanes evaluate through
    /// [`PolyDynamics::derivative_batch_into`], and the Euler update
    /// `s + Δt·f` is applied column-wise — instead of one integrator call
    /// per state.  Every lane is bit-for-bit the scalar
    /// [`EnvironmentContext::step_deterministic`] successor (debug builds
    /// assert this per lane); other integrators fall back to per-lane
    /// scalar stepping, which is trivially identical.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `actions` have different lengths or any
    /// state/action has the wrong dimension.
    pub fn step_deterministic_batch(
        &self,
        states: &[Vec<f64>],
        actions: &[Vec<f64>],
        next: &mut BatchPoints,
    ) {
        assert_eq!(
            states.len(),
            actions.len(),
            "one action per state is required"
        );
        let n = self.state_dim();
        let m = self.action_dim();
        if next.nvars() != n {
            *next = BatchPoints::with_capacity(n, states.len());
        } else {
            next.clear();
        }
        if self.integrator != Integrator::Euler {
            for (state, action) in states.iter().zip(actions.iter()) {
                next.push(&self.step_deterministic(state, action));
            }
            return;
        }
        STEP_BATCH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let StepBatchScratch {
                joint,
                derivative,
                row,
            } = scratch;
            if joint.nvars() != n + m {
                *joint = BatchPoints::with_capacity(n + m, states.len());
            } else {
                joint.clear();
            }
            for (state, action) in states.iter().zip(actions.iter()) {
                assert_eq!(state.len(), n, "state dimension mismatch");
                assert_eq!(action.len(), m, "action dimension mismatch");
                row.clear();
                row.extend_from_slice(state);
                row.extend(
                    action
                        .iter()
                        .enumerate()
                        .map(|(i, a)| a.clamp(self.action_low[i], self.action_high[i])),
                );
                joint.push(row);
            }
            self.dynamics.derivative_batch_into(joint, derivative);
            let len = states.len();
            let dt = self.dt;
            next.resize_lanes(len, 0.0);
            for i in 0..n {
                let column = &joint.column(i)[..len];
                let k = &derivative[i * len..(i + 1) * len];
                for ((slot, &s), &d) in next.column_mut(i).iter_mut().zip(column).zip(k) {
                    *slot = s + dt * d;
                }
            }
        });
        #[cfg(debug_assertions)]
        for (lane, (state, action)) in states.iter().zip(actions.iter()).enumerate() {
            let reference = self.step_deterministic(state, action);
            let batched = next.state(lane);
            debug_assert!(
                reference
                    .iter()
                    .zip(batched.iter())
                    .all(|(r, b)| r.to_bits() == b.to_bits()),
                "batched step lane {lane} diverged from the scalar integrator"
            );
        }
    }

    /// One-step successor with a disturbance sampled from its bounds.
    pub fn step<R: Rng + ?Sized>(&self, state: &[f64], action: &[f64], rng: &mut R) -> Vec<f64> {
        let mut next = self.step_deterministic(state, action);
        if !self.disturbance.is_zero() {
            let d = self.disturbance.sample(rng);
            for (x, di) in next.iter_mut().zip(d.iter()) {
                *x += self.dt * di;
            }
        }
        next
    }

    /// Rolls out `policy` from `initial` for at most `steps` transitions.
    ///
    /// The rollout stops early if the state becomes non-finite (numerical
    /// blow-up after leaving the modeled regime) or one step after entering
    /// an unsafe state, mirroring episode termination during RL training.
    pub fn rollout<P, R>(
        &self,
        policy: &P,
        initial: &[f64],
        steps: usize,
        rng: &mut R,
    ) -> Trajectory
    where
        P: Policy + ?Sized,
        R: Rng + ?Sized,
    {
        let mut trajectory = Trajectory::starting_at(initial.to_vec());
        let mut state = initial.to_vec();
        for _ in 0..steps {
            if self.is_unsafe(&state) || state.iter().any(|x| !x.is_finite()) {
                break;
            }
            let action = self.clamp_action(&policy.action(&state));
            let reward = self.reward(&state, &action);
            let next = self.step(&state, &action, rng);
            trajectory.push(action, reward, next.clone());
            state = next;
        }
        trajectory
    }

    /// Rolls out `policy` for a full episode (the configured horizon) from a
    /// random initial state.
    pub fn rollout_episode<P, R>(&self, policy: &P, rng: &mut R) -> Trajectory
    where
        P: Policy + ?Sized,
        R: Rng + ?Sized,
    {
        let start = self.sample_initial(rng);
        self.rollout(policy, &start, self.horizon, rng)
    }

    /// Builds the Euler closed-loop successor polynomials
    /// `s'_i = s_i + Δt · f_i(s, P(s))` over the state variables, given one
    /// action polynomial per action dimension.
    ///
    /// Disturbances are *not* included here; the verifier accounts for them
    /// adversarially via interval bounds.
    ///
    /// # Panics
    ///
    /// Panics if the action polynomials have the wrong count or variable
    /// dimension (see [`PolyDynamics::close_loop`]).
    pub fn successor_polynomials(&self, action_polys: &[Polynomial]) -> Vec<Polynomial> {
        let n = self.state_dim();
        let closed = self.dynamics.close_loop(action_polys);
        closed
            .iter()
            .enumerate()
            .map(|(i, f_i)| &Polynomial::variable(i, n) + &f_i.scaled(self.dt))
            .collect()
    }
}

impl fmt::Debug for EnvironmentContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnvironmentContext")
            .field("name", &self.name)
            .field("state_dim", &self.state_dim())
            .field("action_dim", &self.action_dim())
            .field("dt", &self.dt)
            .field("integrator", &self.integrator)
            .field("init", &self.init)
            .field("safety", &self.safety)
            .field("disturbance", &self.disturbance)
            .field("horizon", &self.horizon)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosurePolicy, ConstantPolicy};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_poly::Polynomial;

    fn double_integrator_env() -> EnvironmentContext {
        // ẋ0 = x1, ẋ1 = a
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        EnvironmentContext::new(
            "double-integrator",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5, 0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
        )
    }

    #[test]
    fn defaults_and_builders() {
        let env = double_integrator_env()
            .with_horizon(100)
            .with_variable_names(&["pos", "vel"])
            .with_action_bounds(vec![-1.0], vec![1.0])
            .with_disturbance(Disturbance::symmetric(&[0.0, 0.01]))
            .with_integrator(Integrator::RungeKutta4)
            .with_name("renamed");
        assert_eq!(env.name(), "renamed");
        assert_eq!(env.state_dim(), 2);
        assert_eq!(env.action_dim(), 1);
        assert_eq!(env.horizon(), 100);
        assert_eq!(env.variable_names(), vec!["pos", "vel"]);
        assert_eq!(env.integrator(), Integrator::RungeKutta4);
        assert_eq!(env.clamp_action(&[5.0]), vec![1.0]);
        assert_eq!(env.clamp_action(&[-5.0]), vec![-1.0]);
        assert_eq!(env.action_low(), &[-1.0]);
        assert_eq!(env.action_high(), &[1.0]);
        assert!(!env.disturbance().is_zero());
        assert!(format!("{env:?}").contains("renamed"));
    }

    #[test]
    fn default_reward_penalizes_unsafe_states() {
        let env = double_integrator_env();
        assert!(env.reward(&[0.0, 0.0], &[0.0]) == 0.0);
        assert!(env.reward(&[0.5, 0.0], &[0.0]) < 0.0);
        assert_eq!(env.reward(&[5.0, 0.0], &[0.0]), -100.0);
        assert!(env.is_steady(&[0.01, -0.02]));
        assert!(!env.is_steady(&[0.2, 0.0]));
        assert!(env.is_unsafe(&[3.0, 0.0]));
    }

    #[test]
    fn deterministic_step_matches_euler() {
        let env = double_integrator_env();
        let next = env.step_deterministic(&[1.0, 2.0], &[3.0]);
        assert!((next[0] - (1.0 + 0.01 * 2.0)).abs() < 1e-12);
        assert!((next[1] - (2.0 + 0.01 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn step_with_disturbance_stays_within_bounds() {
        let env = double_integrator_env().with_disturbance(Disturbance::symmetric(&[0.0, 1.0]));
        let mut rng = SmallRng::seed_from_u64(11);
        let base = env.step_deterministic(&[0.0, 0.0], &[0.0]);
        for _ in 0..50 {
            let next = env.step(&[0.0, 0.0], &[0.0], &mut rng);
            assert_eq!(next[0], base[0]);
            assert!((next[1] - base[1]).abs() <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn rollout_runs_and_terminates_on_unsafe() {
        let env = double_integrator_env();
        let mut rng = SmallRng::seed_from_u64(5);
        // A stabilizing PD controller keeps the rollout safe for all steps.
        let pd = ClosurePolicy::new(1, |s: &[f64]| vec![-2.0 * s[0] - 2.0 * s[1]]);
        let trajectory = env.rollout(&pd, &[0.4, 0.0], 200, &mut rng);
        assert_eq!(trajectory.len(), 200);
        assert!(!trajectory.violates(env.safety()));
        // A strongly destabilizing constant action leaves the safe box and the
        // rollout stops early.
        let bad = ConstantPolicy::new(vec![50.0]);
        let bad_traj = env.rollout(&bad, &[0.4, 0.0], 5000, &mut rng);
        assert!(bad_traj.len() < 5000);
        assert!(bad_traj.violates(env.safety()));
        // Episode rollout starts inside S0.
        let short = env.clone().with_horizon(10);
        let episode = short.rollout_episode(&pd, &mut rng);
        assert!(env.init().contains(episode.initial_state().unwrap()));
    }

    #[test]
    fn batched_step_matches_scalar_step_bit_for_bit() {
        // Action bounds so the per-lane clamp path is exercised; 19 lanes
        // cover two full sweeps plus a ragged tail.
        let env = double_integrator_env().with_action_bounds(vec![-1.0], vec![1.0]);
        let states: Vec<Vec<f64>> = (0..19)
            .map(|i| vec![(i as f64) * 0.1 - 0.9, 0.5 - (i as f64) * 0.07])
            .collect();
        let actions: Vec<Vec<f64>> = (0..19).map(|i| vec![(i as f64) * 0.3 - 2.5]).collect();
        let mut next = vrl_poly::BatchPoints::new(0);
        env.step_deterministic_batch(&states, &actions, &mut next);
        assert_eq!(next.len(), states.len());
        assert_eq!(next.nvars(), 2);
        for (lane, (state, action)) in states.iter().zip(actions.iter()).enumerate() {
            let reference = env.step_deterministic(state, action);
            let batched = next.state(lane);
            for (r, b) in reference.iter().zip(batched.iter()) {
                assert_eq!(r.to_bits(), b.to_bits(), "lane {lane}");
            }
        }
        // Non-Euler integrators fall back to per-lane scalar stepping.
        let rk4 = env.clone().with_integrator(Integrator::RungeKutta4);
        rk4.step_deterministic_batch(&states, &actions, &mut next);
        for (lane, (state, action)) in states.iter().zip(actions.iter()).enumerate() {
            assert_eq!(next.state(lane), rk4.step_deterministic(state, action));
        }
        // Empty batches are fine and the output batch is reusable.
        env.step_deterministic_batch(&[], &[], &mut next);
        assert!(next.is_empty());
    }

    #[test]
    #[should_panic(expected = "one action per state")]
    fn batched_step_rejects_mismatched_lengths() {
        let env = double_integrator_env();
        let mut next = vrl_poly::BatchPoints::new(2);
        env.step_deterministic_batch(&[vec![0.0, 0.0]], &[], &mut next);
    }

    #[test]
    fn successor_polynomials_match_deterministic_step() {
        let env = double_integrator_env();
        // Program a = -1.5 x0 - 0.7 x1.
        let program = Polynomial::linear(&[-1.5, -0.7], 0.0);
        let succ = env.successor_polynomials(std::slice::from_ref(&program));
        assert_eq!(succ.len(), 2);
        let s = [0.3, -0.2];
        let a = [program.eval(&s)];
        let expected = env.step_deterministic(&s, &a);
        for (p, e) in succ.iter().zip(expected.iter()) {
            assert!((p.eval(&s) - e).abs() < 1e-12);
        }
    }

    #[test]
    fn environment_modifications_for_env_change_experiments() {
        let env = double_integrator_env();
        let restricted = env
            .clone()
            .with_safety(SafetySpec::inside(BoxRegion::symmetric(&[0.5, 0.5])));
        assert!(restricted.is_unsafe(&[1.0, 0.0]));
        assert!(!env.is_unsafe(&[1.0, 0.0]));
        let tighter_init = env.clone().with_init(BoxRegion::symmetric(&[0.1, 0.1]));
        assert_eq!(tighter_init.init().highs(), &[0.1, 0.1]);
        let heavier = env.clone().with_dynamics(
            PolyDynamics::new(
                2,
                1,
                vec![
                    Polynomial::variable(1, 3),
                    Polynomial::variable(2, 3).scaled(0.5),
                ],
            )
            .unwrap(),
        );
        assert!((heavier.step_deterministic(&[0.0, 0.0], &[1.0])[1] - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_rejected() {
        let dynamics = PolyDynamics::new(1, 0, vec![Polynomial::zero(1)]).unwrap();
        let _ = EnvironmentContext::new(
            "bad",
            dynamics,
            0.0,
            BoxRegion::symmetric(&[1.0]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        );
    }
}
