//! Numerical discretization of continuous dynamics.
//!
//! The paper discretizes the system dynamics with Euler's method (Sec. 3,
//! footnote 2), with the control action held constant over each time step.
//! Runge–Kutta 4 is provided as a higher-order alternative and as the
//! subject of the integrator ablation benchmark.

use crate::Dynamics;
use std::cell::RefCell;

/// Reusable stage buffers for [`Integrator::step`]: `k1..k4` hold stage
/// derivatives, `stage` holds intermediate states.  One set per thread
/// keeps stepping allocation-free (apart from the returned successor) on
/// the serving hot path.
#[derive(Default)]
struct StepScratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    stage: Vec<f64>,
}

thread_local! {
    static STEP_SCRATCH: RefCell<StepScratch> = RefCell::new(StepScratch::default());
}

/// Discretization scheme used to turn `ṡ = f(s, a)` into a discrete
/// transition relation `T_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Integrator {
    /// Forward Euler: `s' = s + Δt · f(s, a)`.  This is the scheme the
    /// paper's transition relation and our verifier use.
    #[default]
    Euler,
    /// Classic fourth-order Runge–Kutta with the action held constant over
    /// the step (simulation only; the verifier always reasons about Euler).
    RungeKutta4,
}

impl Integrator {
    /// Advances the state by one time step of length `dt` with the action
    /// held constant.
    ///
    /// # Panics
    ///
    /// Panics if the state or action slices have dimensions inconsistent
    /// with `dynamics`.
    pub fn step<D: Dynamics + ?Sized>(
        &self,
        dynamics: &D,
        state: &[f64],
        action: &[f64],
        dt: f64,
    ) -> Vec<f64> {
        assert_eq!(
            state.len(),
            dynamics.state_dim(),
            "state dimension mismatch"
        );
        assert_eq!(
            action.len(),
            dynamics.action_dim(),
            "action dimension mismatch"
        );
        // Take the scratch out of the cell (leaving a fresh one) instead of
        // holding the borrow across `derivative_into`: a `Dynamics`
        // implementation is free to call back into `step`, and a held
        // borrow would turn that into a `RefCell` panic.
        let mut scratch = STEP_SCRATCH.with(RefCell::take);
        let StepScratch {
            k1,
            k2,
            k3,
            k4,
            stage,
        } = &mut scratch;
        let next = match self {
            Integrator::Euler => {
                dynamics.derivative_into(state, action, k1);
                add_scaled(state, k1, dt)
            }
            Integrator::RungeKutta4 => {
                dynamics.derivative_into(state, action, k1);
                add_scaled_into(state, k1, dt / 2.0, stage);
                dynamics.derivative_into(stage, action, k2);
                add_scaled_into(state, k2, dt / 2.0, stage);
                dynamics.derivative_into(stage, action, k3);
                add_scaled_into(state, k3, dt, stage);
                dynamics.derivative_into(stage, action, k4);
                state
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| s + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
                    .collect()
            }
        };
        STEP_SCRATCH.with(|cell| *cell.borrow_mut() = scratch);
        next
    }

    /// Human-readable name of the scheme.
    pub fn name(&self) -> &'static str {
        match self {
            Integrator::Euler => "euler",
            Integrator::RungeKutta4 => "rk4",
        }
    }

    /// Stable one-byte tag used by the artifact serialization format.
    ///
    /// Tags are part of the on-disk format: never renumber existing
    /// variants, only append.
    pub fn tag(&self) -> u8 {
        match self {
            Integrator::Euler => 0,
            Integrator::RungeKutta4 => 1,
        }
    }

    /// Inverse of [`Integrator::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Integrator> {
        match tag {
            0 => Some(Integrator::Euler),
            1 => Some(Integrator::RungeKutta4),
            _ => None,
        }
    }
}

fn add_scaled(state: &[f64], derivative: &[f64], dt: f64) -> Vec<f64> {
    state
        .iter()
        .zip(derivative.iter())
        .map(|(s, d)| s + dt * d)
        .collect()
}

/// `out = state + dt * derivative`, reusing `out`'s storage.
fn add_scaled_into(state: &[f64], derivative: &[f64], dt: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(state.iter().zip(derivative.iter()).map(|(s, d)| s + dt * d));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosureDynamics, PolyDynamics};
    use proptest::prelude::*;
    use vrl_poly::Polynomial;

    fn exponential_decay() -> ClosureDynamics<impl Fn(&[f64], &[f64]) -> Vec<f64>> {
        // ẋ = -x, exact solution x(t) = x0 e^{-t}.
        ClosureDynamics::new(1, 0, |s: &[f64], _a: &[f64]| vec![-s[0]])
    }

    #[test]
    fn euler_step_matches_closed_form() {
        let f = exponential_decay();
        let next = Integrator::Euler.step(&f, &[1.0], &[], 0.1);
        assert!((next[0] - 0.9).abs() < 1e-12);
        assert_eq!(Integrator::Euler.name(), "euler");
        assert_eq!(Integrator::default(), Integrator::Euler);
    }

    #[test]
    fn rk4_is_more_accurate_than_euler() {
        let f = exponential_decay();
        let dt = 0.1;
        let steps = 50;
        let mut euler = vec![1.0];
        let mut rk4 = vec![1.0];
        for _ in 0..steps {
            euler = Integrator::Euler.step(&f, &euler, &[], dt);
            rk4 = Integrator::RungeKutta4.step(&f, &rk4, &[], dt);
        }
        let exact = (-(dt * steps as f64)).exp();
        assert!((rk4[0] - exact).abs() < (euler[0] - exact).abs());
        assert!((rk4[0] - exact).abs() < 1e-6);
        assert_eq!(Integrator::RungeKutta4.name(), "rk4");
    }

    #[test]
    fn action_is_held_constant_during_step() {
        // ẋ = a: one Euler step from 0 with a = 2 gives 2·dt; RK4 the same.
        let f = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let e = Integrator::Euler.step(&f, &[0.0], &[2.0], 0.01);
        let r = Integrator::RungeKutta4.step(&f, &[0.0], &[2.0], 0.01);
        assert!((e[0] - 0.02).abs() < 1e-15);
        assert!((r[0] - 0.02).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn wrong_state_dimension_panics() {
        let f = exponential_decay();
        let _ = Integrator::Euler.step(&f, &[1.0, 2.0], &[], 0.1);
    }

    proptest! {
        #[test]
        fn prop_zero_dt_is_identity(x in -10.0..10.0f64, v in -10.0..10.0f64, a in -5.0..5.0f64) {
            let f = PolyDynamics::new(
                2, 1,
                vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
            ).unwrap();
            for integ in [Integrator::Euler, Integrator::RungeKutta4] {
                let next = integ.step(&f, &[x, v], &[a], 0.0);
                prop_assert!((next[0] - x).abs() < 1e-12);
                prop_assert!((next[1] - v).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_euler_linear_in_dt_for_constant_field(x in -5.0..5.0f64, dt in 0.0..0.5f64) {
            // For ẋ = 3 the Euler and RK4 updates are both exactly 3·dt.
            let f = ClosureDynamics::new(1, 0, |_s: &[f64], _a: &[f64]| vec![3.0]);
            let e = Integrator::Euler.step(&f, &[x], &[], dt);
            let r = Integrator::RungeKutta4.step(&f, &[x], &[], dt);
            prop_assert!((e[0] - (x + 3.0 * dt)).abs() < 1e-12);
            prop_assert!((r[0] - (x + 3.0 * dt)).abs() < 1e-9);
        }
    }
}
