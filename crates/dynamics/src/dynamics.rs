//! Continuous-time system dynamics `ṡ = f(s, a)`.

use std::cell::RefCell;
use vrl_poly::{BatchPoints, CompiledPolySet, Polynomial};

thread_local! {
    /// Reusable `(state, action)` concatenation buffer for
    /// [`PolyDynamics::derivative_into`], so the serving hot path performs
    /// no per-step allocation when evaluating the vector field.
    static POINT_BUFFER: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Continuous-time dynamics of a controlled system.
///
/// Implementors describe the instantaneous rate of change of the state as a
/// function of the current state and the applied control action, i.e. the
/// vector field `f` in `ṡ = f(s, a)` of the paper's Sec. 3.
pub trait Dynamics {
    /// Dimension of the state vector `s`.
    fn state_dim(&self) -> usize;

    /// Dimension of the action vector `a`.
    fn action_dim(&self) -> usize;

    /// Evaluates `f(state, action)`, returning the state derivative.
    fn derivative(&self, state: &[f64], action: &[f64]) -> Vec<f64>;

    /// Evaluates `f(state, action)` into a caller-provided buffer.
    ///
    /// The default delegates to [`Dynamics::derivative`]; implementations
    /// with an allocation-free evaluation path (notably [`PolyDynamics`]
    /// through its compiled kernels) override it, which is what keeps the
    /// integrator — and therefore the shield's serving-path prediction —
    /// off the allocator in steady state.
    fn derivative_into(&self, state: &[f64], action: &[f64], out: &mut Vec<f64>) {
        let d = self.derivative(state, action);
        out.clear();
        out.extend_from_slice(&d);
    }
}

/// Polynomial dynamics: each component of `f` is a [`Polynomial`] over the
/// concatenated variables `(s_0, …, s_{n-1}, a_0, …, a_{m-1})`.
///
/// Every benchmark in the paper has polynomial dynamics (non-polynomial terms
/// such as the pendulum's sine are Taylor-expanded exactly as the paper
/// does), and the verifier relies on this symbolic form to build closed-loop
/// successor polynomials.
///
/// # Examples
///
/// ```
/// use vrl_dynamics::{Dynamics, PolyDynamics};
/// use vrl_poly::Polynomial;
///
/// // 1D double integrator written in first-order form is 2D:
/// //   ẋ0 = x1,  ẋ1 = a
/// let f = PolyDynamics::new(2, 1, vec![
///     Polynomial::variable(1, 3),
///     Polynomial::variable(2, 3),
/// ]).unwrap();
/// assert_eq!(f.derivative(&[0.0, 2.0], &[-1.0]), vec![2.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolyDynamics {
    state_dim: usize,
    action_dim: usize,
    derivatives: Vec<Polynomial>,
    /// Flat compiled form of `derivatives`, built once at construction so
    /// every simulation/serving step evaluates through the fast kernels
    /// instead of walking the sparse `BTreeMap` representation.  Must be
    /// rebuilt whenever `derivatives` changes (all constructors do).
    /// `None` only in the degenerate zero-state-dimension case, which must
    /// keep constructing without panicking (artifact loading relies on
    /// constructors rejecting malformed data via `Result`, not asserts).
    compiled: Option<CompiledPolySet>,
}

/// Error produced when constructing ill-formed [`PolyDynamics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicsError {
    /// The number of derivative polynomials differs from the state dimension.
    WrongDerivativeCount {
        /// Expected number of polynomials (the state dimension).
        expected: usize,
        /// Number actually provided.
        actual: usize,
    },
    /// A derivative polynomial has the wrong number of variables.
    WrongVariableCount {
        /// Index of the offending polynomial.
        index: usize,
        /// Expected variable count (`state_dim + action_dim`).
        expected: usize,
        /// Actual variable count.
        actual: usize,
    },
}

impl std::fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicsError::WrongDerivativeCount { expected, actual } => write!(
                f,
                "expected {expected} derivative polynomials but got {actual}"
            ),
            DynamicsError::WrongVariableCount {
                index,
                expected,
                actual,
            } => write!(
                f,
                "derivative {index} has {actual} variables but {expected} were expected"
            ),
        }
    }
}

impl std::error::Error for DynamicsError {}

impl PolyDynamics {
    /// Creates polynomial dynamics from one polynomial per state dimension.
    ///
    /// Each polynomial must be over `state_dim + action_dim` variables, with
    /// state variables first.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError`] if the number of polynomials or their
    /// variable counts are inconsistent with the declared dimensions.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        derivatives: Vec<Polynomial>,
    ) -> Result<Self, DynamicsError> {
        if derivatives.len() != state_dim {
            return Err(DynamicsError::WrongDerivativeCount {
                expected: state_dim,
                actual: derivatives.len(),
            });
        }
        let expected_vars = state_dim + action_dim;
        for (index, p) in derivatives.iter().enumerate() {
            if p.nvars() != expected_vars {
                return Err(DynamicsError::WrongVariableCount {
                    index,
                    expected: expected_vars,
                    actual: p.nvars(),
                });
            }
        }
        let compiled = (!derivatives.is_empty()).then(|| CompiledPolySet::compile(&derivatives));
        Ok(PolyDynamics {
            state_dim,
            action_dim,
            derivatives,
            compiled,
        })
    }

    /// Creates linear time-invariant dynamics `ṡ = A s + B a (+ c)`.
    ///
    /// `a_matrix` is `n x n` (rows over state derivatives), `b_matrix` is
    /// `n x m`, and `offset` (optional constant drift) is length `n`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent.
    pub fn linear(a_matrix: &[Vec<f64>], b_matrix: &[Vec<f64>], offset: Option<&[f64]>) -> Self {
        let n = a_matrix.len();
        let m = b_matrix.first().map_or(0, Vec::len);
        assert_eq!(
            b_matrix.len(),
            n,
            "A and B must have the same number of rows"
        );
        let nvars = n + m;
        let mut derivatives = Vec::with_capacity(n);
        for i in 0..n {
            assert_eq!(a_matrix[i].len(), n, "A row {i} has the wrong length");
            assert_eq!(b_matrix[i].len(), m, "B row {i} has the wrong length");
            let mut coeffs = vec![0.0; nvars];
            coeffs[..n].copy_from_slice(&a_matrix[i]);
            coeffs[n..].copy_from_slice(&b_matrix[i]);
            let constant = offset.map_or(0.0, |c| c[i]);
            derivatives.push(Polynomial::linear(&coeffs, constant));
        }
        let compiled = (!derivatives.is_empty()).then(|| CompiledPolySet::compile(&derivatives));
        PolyDynamics {
            state_dim: n,
            action_dim: m,
            derivatives,
            compiled,
        }
    }

    /// The derivative polynomials, one per state dimension, each over
    /// `state_dim + action_dim` variables (state variables first).
    pub fn derivatives(&self) -> &[Polynomial] {
        &self.derivatives
    }

    /// Maximum total degree over all derivative polynomials.
    pub fn degree(&self) -> u32 {
        self.derivatives
            .iter()
            .map(Polynomial::degree)
            .max()
            .unwrap_or(0)
    }

    /// Returns true when every derivative polynomial is affine (degree ≤ 1).
    pub fn is_affine(&self) -> bool {
        self.degree() <= 1
    }

    /// For affine dynamics, extracts `(A, B, c)` such that `ṡ = A s + B a + c`.
    ///
    /// Returns `None` when the dynamics are not affine.
    #[allow(clippy::type_complexity)]
    pub fn affine_parts(&self) -> Option<(Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<f64>)> {
        if !self.is_affine() {
            return None;
        }
        let n = self.state_dim;
        let m = self.action_dim;
        let mut a = vec![vec![0.0; n]; n];
        let mut b = vec![vec![0.0; m]; n];
        let mut c = vec![0.0; n];
        for (i, p) in self.derivatives.iter().enumerate() {
            c[i] = p.constant_term();
            for j in 0..n {
                let mut exps = vec![0u32; n + m];
                exps[j] = 1;
                a[i][j] = p.coefficient(&exps);
            }
            for j in 0..m {
                let mut exps = vec![0u32; n + m];
                exps[n + j] = 1;
                b[i][j] = p.coefficient(&exps);
            }
        }
        Some((a, b, c))
    }

    /// Evaluates the vector field at every lane of a [`BatchPoints`] batch
    /// of concatenated `(state, action)` points in one lane-parallel sweep
    /// of the compiled derivative family.
    ///
    /// `out` is resized to `state_dim * points.len()` and laid out
    /// component-major: `out[i * points.len() + lane]` is `f_i` at lane
    /// `lane`.  Every entry is bit-for-bit the scalar
    /// [`Dynamics::derivative_into`] value for that lane (the batch kernel
    /// asserts per-lane parity in debug builds), which is what lets the
    /// batched integrator step — and therefore `Shield::decide_batch`'s
    /// successor prediction — stay decision-identical to scalar stepping.
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != state_dim + action_dim`.
    pub fn derivative_batch_into(&self, points: &BatchPoints, out: &mut Vec<f64>) {
        assert_eq!(
            points.nvars(),
            self.state_dim + self.action_dim,
            "batch dimension mismatch"
        );
        match &self.compiled {
            Some(compiled) => compiled.evaluate_batch(points, out),
            None => out.clear(), // zero state dimensions: nothing to evaluate
        }
    }

    /// Substitutes action polynomials (over state variables only) into the
    /// dynamics, producing the closed-loop vector field `f(s, P(s))` as
    /// polynomials over the state variables.
    ///
    /// # Panics
    ///
    /// Panics if the number of action polynomials differs from the action
    /// dimension or any of them is not over exactly `state_dim` variables.
    pub fn close_loop(&self, action_polys: &[Polynomial]) -> Vec<Polynomial> {
        assert_eq!(
            action_polys.len(),
            self.action_dim,
            "one action polynomial per action dimension is required"
        );
        for p in action_polys {
            assert_eq!(
                p.nvars(),
                self.state_dim,
                "action polynomials must be over the state variables only"
            );
        }
        // Build the substitution map: state variables map to themselves,
        // action variables map to the provided programs.
        let mut assignments: Vec<Polynomial> = (0..self.state_dim)
            .map(|i| Polynomial::variable(i, self.state_dim))
            .collect();
        assignments.extend(action_polys.iter().cloned());
        self.derivatives
            .iter()
            .map(|f| f.substitute(&assignments))
            .collect()
    }
}

impl Dynamics for PolyDynamics {
    fn state_dim(&self) -> usize {
        self.state_dim
    }

    fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn derivative(&self, state: &[f64], action: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.state_dim);
        self.derivative_into(state, action, &mut out);
        out
    }

    /// Allocation-free evaluation through the compiled kernels (apart from
    /// the thread-local point buffer's first growth).
    ///
    /// # Panics
    ///
    /// Panics if a slice length disagrees with the declared dimensions.
    fn derivative_into(&self, state: &[f64], action: &[f64], out: &mut Vec<f64>) {
        assert_eq!(state.len(), self.state_dim, "state dimension mismatch");
        assert_eq!(action.len(), self.action_dim, "action dimension mismatch");
        out.resize(self.state_dim, 0.0);
        let Some(compiled) = &self.compiled else {
            return; // zero state dimensions: nothing to evaluate
        };
        POINT_BUFFER.with(|buf| {
            let point = &mut *buf.borrow_mut();
            point.clear();
            point.extend_from_slice(state);
            point.extend_from_slice(action);
            compiled.eval_into(point, out);
        });
    }
}

/// Dynamics defined by an arbitrary closure, for simulation-only use cases
/// (e.g. testing the shield against non-polynomial ground-truth models).
pub struct ClosureDynamics<F> {
    state_dim: usize,
    action_dim: usize,
    f: F,
}

impl<F> ClosureDynamics<F>
where
    F: Fn(&[f64], &[f64]) -> Vec<f64>,
{
    /// Wraps a closure computing `f(state, action)`.
    pub fn new(state_dim: usize, action_dim: usize, f: F) -> Self {
        ClosureDynamics {
            state_dim,
            action_dim,
            f,
        }
    }
}

impl<F> Dynamics for ClosureDynamics<F>
where
    F: Fn(&[f64], &[f64]) -> Vec<f64>,
{
    fn state_dim(&self) -> usize {
        self.state_dim
    }

    fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn derivative(&self, state: &[f64], action: &[f64]) -> Vec<f64> {
        (self.f)(state, action)
    }
}

impl<F> std::fmt::Debug for ClosureDynamics<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureDynamics")
            .field("state_dim", &self.state_dim)
            .field("action_dim", &self.action_dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_state_dimension_constructs_without_panicking() {
        // Artifact loading depends on constructors rejecting malformed data
        // via `Result`/graceful values, never via asserts: the degenerate
        // zero-dimension dynamics must still construct (it is rejected
        // later by the components that require positive dimensions).
        let d = PolyDynamics::new(0, 1, vec![]).expect("constructs");
        assert_eq!(d.derivative(&[], &[0.5]), Vec::<f64>::new());
        let lin = PolyDynamics::linear(&[], &[], None);
        assert_eq!(lin.state_dim(), 0);
        assert_eq!(lin.derivative(&[], &[]), Vec::<f64>::new());
    }

    fn double_integrator() -> PolyDynamics {
        PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn poly_dynamics_evaluation() {
        let f = double_integrator();
        assert_eq!(f.state_dim(), 2);
        assert_eq!(f.action_dim(), 1);
        assert_eq!(f.derivative(&[1.0, -3.0], &[0.5]), vec![-3.0, 0.5]);
        assert_eq!(f.degree(), 1);
        assert!(f.is_affine());
        assert_eq!(f.derivatives().len(), 2);
    }

    #[test]
    fn construction_errors_are_reported() {
        let err = PolyDynamics::new(2, 1, vec![Polynomial::zero(3)]).unwrap_err();
        assert!(matches!(
            err,
            DynamicsError::WrongDerivativeCount {
                expected: 2,
                actual: 1
            }
        ));
        assert!(err.to_string().contains("expected 2"));
        let err = PolyDynamics::new(1, 1, vec![Polynomial::zero(3)]).unwrap_err();
        assert!(matches!(
            err,
            DynamicsError::WrongVariableCount {
                index: 0,
                expected: 2,
                actual: 3
            }
        ));
        assert!(err.to_string().contains("variables"));
    }

    #[test]
    fn linear_constructor_and_affine_parts() {
        let a = vec![vec![0.0, 1.0], vec![-1.0, -0.5]];
        let b = vec![vec![0.0], vec![2.0]];
        let f = PolyDynamics::linear(&a, &b, Some(&[0.0, 0.1]));
        let d = f.derivative(&[1.0, 2.0], &[0.5]);
        assert!((d[0] - 2.0).abs() < 1e-12);
        assert!((d[1] - (-0.9)).abs() < 1e-12);
        let (a2, b2, c2) = f.affine_parts().unwrap();
        assert_eq!(a2, a);
        assert_eq!(b2, b);
        assert_eq!(c2, vec![0.0, 0.1]);
    }

    #[test]
    fn affine_parts_rejects_nonlinear() {
        // ẋ = x^2 + a
        let x = Polynomial::variable(0, 2);
        let a = Polynomial::variable(1, 2);
        let f = PolyDynamics::new(1, 1, vec![&(&x * &x) + &a]).unwrap();
        assert!(!f.is_affine());
        assert!(f.affine_parts().is_none());
        assert_eq!(f.degree(), 2);
    }

    #[test]
    fn close_loop_substitutes_programs() {
        // Duffing-style: ẋ = y, ẏ = -x - x³ + a with program a = θ1 x + θ2 y.
        let x = Polynomial::variable(0, 3);
        let y = Polynomial::variable(1, 3);
        let a = Polynomial::variable(2, 3);
        let ydot = &(&(-&x) - &x.pow(3)) + &a;
        let f = PolyDynamics::new(2, 1, vec![y.clone(), ydot]).unwrap();
        let program = Polynomial::linear(&[0.39, -1.41], 0.0);
        let closed = f.close_loop(std::slice::from_ref(&program));
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].nvars(), 2);
        let s: [f64; 2] = [0.7, -0.3];
        let expected_ydot = -s[0] - s[0].powi(3) + program.eval(&s);
        assert!((closed[1].eval(&s) - expected_ydot).abs() < 1e-12);
        assert!((closed[0].eval(&s) - s[1]).abs() < 1e-12);
    }

    #[test]
    fn closure_dynamics_adapts_arbitrary_models() {
        let g = ClosureDynamics::new(1, 1, |s: &[f64], a: &[f64]| vec![s[0].sin() + a[0]]);
        assert_eq!(g.state_dim(), 1);
        assert_eq!(g.action_dim(), 1);
        assert!((g.derivative(&[0.0], &[1.0])[0] - 1.0).abs() < 1e-12);
        assert!(format!("{g:?}").contains("ClosureDynamics"));
    }

    proptest! {
        #[test]
        fn prop_close_loop_matches_pointwise(theta1 in -3.0..3.0f64, theta2 in -3.0..3.0f64,
                                              sx in -2.0..2.0f64, sy in -2.0..2.0f64) {
            let f = double_integrator();
            let program = Polynomial::linear(&[theta1, theta2], 0.0);
            let closed = f.close_loop(std::slice::from_ref(&program));
            let s = [sx, sy];
            let a = [program.eval(&s)];
            let direct = f.derivative(&s, &a);
            for (c, d) in closed.iter().zip(direct.iter()) {
                prop_assert!((c.eval(&s) - d).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_affine_roundtrip(a00 in -2.0..2.0f64, a01 in -2.0..2.0f64,
                                  a10 in -2.0..2.0f64, a11 in -2.0..2.0f64,
                                  b0 in -2.0..2.0f64, b1 in -2.0..2.0f64) {
            let a = vec![vec![a00, a01], vec![a10, a11]];
            let b = vec![vec![b0], vec![b1]];
            let f = PolyDynamics::linear(&a, &b, None);
            let (a2, b2, c2) = f.affine_parts().unwrap();
            for i in 0..2 {
                prop_assert!(c2[i].abs() < 1e-12);
                for j in 0..2 {
                    prop_assert!((a2[i][j] - a[i][j]).abs() < 1e-12);
                }
                prop_assert!((b2[i][0] - b[i][0]).abs() < 1e-12);
            }
        }
    }
}
