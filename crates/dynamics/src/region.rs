//! State-space regions: boxes, initial sets, and safety specifications.

use rand::Rng;
use vrl_poly::Interval;

/// An axis-aligned box (hyper-rectangle) in state space.
///
/// Boxes are the workhorse region representation of the framework: the
/// paper's initial state sets `S0` and (complements of) unsafe sets `Su` are
/// all boxes, and the branch-and-bound verifier subdivides boxes.
///
/// # Examples
///
/// ```
/// use vrl_dynamics::BoxRegion;
///
/// let b = BoxRegion::symmetric(&[1.0, 2.0]);
/// assert!(b.contains(&[0.5, -1.5]));
/// assert!(!b.contains(&[1.5, 0.0]));
/// assert_eq!(b.center(), vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoxRegion {
    lows: Vec<f64>,
    highs: Vec<f64>,
}

impl BoxRegion {
    /// Creates a box from per-dimension lower and upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors have different lengths or any lower bound
    /// exceeds the corresponding upper bound.
    pub fn new(lows: Vec<f64>, highs: Vec<f64>) -> Self {
        assert_eq!(
            lows.len(),
            highs.len(),
            "bound vectors must have equal length"
        );
        for (i, (lo, hi)) in lows.iter().zip(highs.iter()).enumerate() {
            assert!(
                lo <= hi,
                "lower bound {lo} exceeds upper bound {hi} in dimension {i}"
            );
        }
        BoxRegion { lows, highs }
    }

    /// Creates the symmetric box `[-b_i, b_i]` in every dimension.
    ///
    /// # Panics
    ///
    /// Panics if any bound is negative.
    pub fn symmetric(bounds: &[f64]) -> Self {
        assert!(
            bounds.iter().all(|b| *b >= 0.0),
            "symmetric bounds must be non-negative"
        );
        BoxRegion::new(bounds.iter().map(|b| -b).collect(), bounds.to_vec())
    }

    /// Creates the box `center ± radius` (same radius in every dimension).
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0`.
    pub fn ball(center: &[f64], radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        BoxRegion::new(
            center.iter().map(|c| c - radius).collect(),
            center.iter().map(|c| c + radius).collect(),
        )
    }

    /// Dimension of the box.
    pub fn dim(&self) -> usize {
        self.lows.len()
    }

    /// Lower bounds, one per dimension.
    pub fn lows(&self) -> &[f64] {
        &self.lows
    }

    /// Upper bounds, one per dimension.
    pub fn highs(&self) -> &[f64] {
        &self.highs
    }

    /// Lower bound in dimension `i`.
    pub fn low(&self, i: usize) -> f64 {
        self.lows[i]
    }

    /// Upper bound in dimension `i`.
    pub fn high(&self, i: usize) -> f64 {
        self.highs[i]
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Per-dimension widths.
    pub fn widths(&self) -> Vec<f64> {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(l, h)| h - l)
            .collect()
    }

    /// Maximum width over all dimensions (the "diameter" used when shrinking
    /// the initial region in Algorithm 2).
    pub fn diameter(&self) -> f64 {
        self.widths().into_iter().fold(0.0, f64::max)
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        self.widths().into_iter().product()
    }

    /// Returns true when `point` lies in the box (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        point
            .iter()
            .zip(self.lows.iter().zip(self.highs.iter()))
            .all(|(x, (l, h))| *l <= *x && *x <= *h)
    }

    /// Returns true when `other` is entirely contained in `self`.
    pub fn contains_box(&self, other: &BoxRegion) -> bool {
        self.dim() == other.dim()
            && other
                .lows
                .iter()
                .zip(self.lows.iter())
                .all(|(ol, sl)| ol >= sl)
            && other
                .highs
                .iter()
                .zip(self.highs.iter())
                .all(|(oh, sh)| oh <= sh)
    }

    /// Intersection of two boxes, if non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersection(&self, other: &BoxRegion) -> Option<BoxRegion> {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        let lows: Vec<f64> = self
            .lows
            .iter()
            .zip(other.lows.iter())
            .map(|(a, b)| a.max(*b))
            .collect();
        let highs: Vec<f64> = self
            .highs
            .iter()
            .zip(other.highs.iter())
            .map(|(a, b)| a.min(*b))
            .collect();
        if lows.iter().zip(highs.iter()).all(|(l, h)| l <= h) {
            Some(BoxRegion::new(lows, highs))
        } else {
            None
        }
    }

    /// Returns the box scaled about its center by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    pub fn scaled_about_center(&self, factor: f64) -> BoxRegion {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let center = self.center();
        let lows = center
            .iter()
            .zip(self.lows.iter())
            .map(|(c, l)| c + factor * (l - c))
            .collect();
        let highs = center
            .iter()
            .zip(self.highs.iter())
            .map(|(c, h)| c + factor * (h - c))
            .collect();
        BoxRegion::new(lows, highs)
    }

    /// Returns the box expanded by `margin` in every direction.
    ///
    /// # Panics
    ///
    /// Panics if shrinking (`margin < 0`) would invert any dimension.
    pub fn expanded(&self, margin: f64) -> BoxRegion {
        BoxRegion::new(
            self.lows.iter().map(|l| l - margin).collect(),
            self.highs.iter().map(|h| h + margin).collect(),
        )
    }

    /// Samples a point uniformly at random from the box.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(l, h)| if l == h { *l } else { rng.gen_range(*l..=*h) })
            .collect()
    }

    /// Enumerates all `2^dim` corner points.
    ///
    /// # Panics
    ///
    /// Panics if the dimension exceeds 24 (guarding against accidental
    /// exponential blow-up).
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        assert!(n <= 24, "corner enumeration limited to 24 dimensions");
        let count = 1usize << n;
        let mut out = Vec::with_capacity(count);
        for mask in 0..count {
            let corner: Vec<f64> = (0..n)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        self.highs[i]
                    } else {
                        self.lows[i]
                    }
                })
                .collect();
            out.push(corner);
        }
        out
    }

    /// Splits the box into two halves along its widest dimension.
    pub fn bisect(&self) -> (BoxRegion, BoxRegion) {
        let widths = self.widths();
        let split_dim = widths
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mid = 0.5 * (self.lows[split_dim] + self.highs[split_dim]);
        let mut left_highs = self.highs.clone();
        left_highs[split_dim] = mid;
        let mut right_lows = self.lows.clone();
        right_lows[split_dim] = mid;
        (
            BoxRegion::new(self.lows.clone(), left_highs),
            BoxRegion::new(right_lows, self.highs.clone()),
        )
    }

    /// Returns the box as per-dimension [`Interval`]s for interval evaluation.
    pub fn to_intervals(&self) -> Vec<Interval> {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(l, h)| Interval::new(*l, *h))
            .collect()
    }

    /// Builds a uniform grid of points covering the box with `per_dim` points
    /// in each dimension (including the endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `per_dim == 0` or the total grid would exceed one million
    /// points.
    pub fn grid(&self, per_dim: usize) -> Vec<Vec<f64>> {
        assert!(per_dim > 0, "grid resolution must be positive");
        let n = self.dim();
        let total = per_dim.checked_pow(n as u32).unwrap_or(usize::MAX);
        assert!(total <= 1_000_000, "grid of {total} points is too large");
        let mut out = Vec::with_capacity(total);
        let mut indices = vec![0usize; n];
        loop {
            let point: Vec<f64> = (0..n)
                .map(|i| {
                    if per_dim == 1 {
                        0.5 * (self.lows[i] + self.highs[i])
                    } else {
                        self.lows[i]
                            + (self.highs[i] - self.lows[i]) * indices[i] as f64
                                / (per_dim - 1) as f64
                    }
                })
                .collect();
            out.push(point);
            // Advance the multi-index odometer.
            let mut dim = 0;
            loop {
                if dim == n {
                    return out;
                }
                indices[dim] += 1;
                if indices[dim] < per_dim {
                    break;
                }
                indices[dim] = 0;
                dim += 1;
            }
        }
    }
}

/// The safety specification of an environment: the system must remain inside
/// a safe box and outside every obstacle box.
///
/// This directly models the paper's unsafe sets: `Su` is the complement of a
/// box (e.g. the pendulum must keep `|η|, |ω| < 90°`), optionally augmented
/// with obstacle boxes that must be avoided (the Self-Driving environment
/// change of Table 3).
///
/// # Examples
///
/// ```
/// use vrl_dynamics::{BoxRegion, SafetySpec};
///
/// let spec = SafetySpec::inside(BoxRegion::symmetric(&[1.0, 1.0]));
/// assert!(spec.is_safe(&[0.5, 0.5]));
/// assert!(spec.is_unsafe(&[2.0, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SafetySpec {
    safe_box: BoxRegion,
    obstacles: Vec<BoxRegion>,
}

impl SafetySpec {
    /// Safety means staying inside `safe_box`.
    pub fn inside(safe_box: BoxRegion) -> Self {
        SafetySpec {
            safe_box,
            obstacles: Vec::new(),
        }
    }

    /// Adds an obstacle box that must be avoided.
    ///
    /// # Panics
    ///
    /// Panics if the obstacle dimension does not match the safe box.
    pub fn with_obstacle(mut self, obstacle: BoxRegion) -> Self {
        assert_eq!(
            obstacle.dim(),
            self.safe_box.dim(),
            "obstacle dimension must match the safe box"
        );
        self.obstacles.push(obstacle);
        self
    }

    /// The box the system must remain inside.
    pub fn safe_box(&self) -> &BoxRegion {
        &self.safe_box
    }

    /// Obstacle boxes the system must avoid.
    pub fn obstacles(&self) -> &[BoxRegion] {
        &self.obstacles
    }

    /// Dimension of the specification.
    pub fn dim(&self) -> usize {
        self.safe_box.dim()
    }

    /// Returns true when `state` violates the specification.
    pub fn is_unsafe(&self, state: &[f64]) -> bool {
        !self.safe_box.contains(state) || self.obstacles.iter().any(|o| o.contains(state))
    }

    /// Returns true when `state` satisfies the specification.
    pub fn is_safe(&self, state: &[f64]) -> bool {
        !self.is_unsafe(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let b = BoxRegion::new(vec![-1.0, 0.0], vec![1.0, 2.0]);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.lows(), &[-1.0, 0.0]);
        assert_eq!(b.highs(), &[1.0, 2.0]);
        assert_eq!(b.low(1), 0.0);
        assert_eq!(b.high(0), 1.0);
        assert_eq!(b.center(), vec![0.0, 1.0]);
        assert_eq!(b.widths(), vec![2.0, 2.0]);
        assert_eq!(b.diameter(), 2.0);
        assert_eq!(b.volume(), 4.0);
        let s = BoxRegion::symmetric(&[0.5]);
        assert_eq!(s.lows(), &[-0.5]);
        let ball = BoxRegion::ball(&[1.0, 1.0], 0.25);
        assert_eq!(ball.lows(), &[0.75, 0.75]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn invalid_bounds_panic() {
        let _ = BoxRegion::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn containment_and_intersection() {
        let a = BoxRegion::symmetric(&[1.0, 1.0]);
        let b = BoxRegion::new(vec![0.5, 0.5], vec![2.0, 2.0]);
        assert!(a.contains(&[1.0, -1.0]));
        assert!(!a.contains(&[1.1, 0.0]));
        assert!(a.contains_box(&BoxRegion::symmetric(&[0.5, 0.5])));
        assert!(!a.contains_box(&b));
        let inter = a.intersection(&b).unwrap();
        assert_eq!(inter.lows(), &[0.5, 0.5]);
        assert_eq!(inter.highs(), &[1.0, 1.0]);
        let far = BoxRegion::new(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn scaling_expansion_and_bisection() {
        let b = BoxRegion::new(vec![0.0, 0.0], vec![2.0, 4.0]);
        let half = b.scaled_about_center(0.5);
        assert_eq!(half.lows(), &[0.5, 1.0]);
        assert_eq!(half.highs(), &[1.5, 3.0]);
        let grown = b.expanded(1.0);
        assert_eq!(grown.lows(), &[-1.0, -1.0]);
        let (left, right) = b.bisect();
        // Widest dimension is the second one.
        assert_eq!(left.highs(), &[2.0, 2.0]);
        assert_eq!(right.lows(), &[0.0, 2.0]);
    }

    #[test]
    fn corners_grid_and_intervals() {
        let b = BoxRegion::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let corners = b.corners();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&vec![0.0, -1.0]));
        assert!(corners.contains(&vec![1.0, 1.0]));
        let grid = b.grid(3);
        assert_eq!(grid.len(), 9);
        assert!(grid.contains(&vec![0.5, 0.0]));
        assert_eq!(b.grid(1), vec![vec![0.5, 0.0]]);
        let ivs = b.to_intervals();
        assert_eq!(ivs[1].lo(), -1.0);
        assert_eq!(ivs[1].hi(), 1.0);
    }

    #[test]
    fn sampling_stays_inside() {
        let b = BoxRegion::new(vec![-2.0, 3.0], vec![-1.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = b.sample(&mut rng);
            assert!(b.contains(&p));
            assert_eq!(p[1], 3.0);
        }
    }

    #[test]
    fn safety_spec_with_obstacles() {
        let spec = SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0]))
            .with_obstacle(BoxRegion::new(vec![0.5, 0.5], vec![1.0, 1.0]));
        assert!(spec.is_safe(&[0.0, 0.0]));
        assert!(spec.is_unsafe(&[3.0, 0.0]));
        assert!(spec.is_unsafe(&[0.75, 0.75]));
        assert_eq!(spec.dim(), 2);
        assert_eq!(spec.obstacles().len(), 1);
        assert_eq!(spec.safe_box().highs(), &[2.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_center_is_contained(lows in proptest::collection::vec(-10.0..10.0f64, 1..6),
                                     widths in proptest::collection::vec(0.0..5.0f64, 1..6)) {
            let n = lows.len().min(widths.len());
            let highs: Vec<f64> = lows[..n].iter().zip(widths[..n].iter()).map(|(l, w)| l + w).collect();
            let b = BoxRegion::new(lows[..n].to_vec(), highs);
            prop_assert!(b.contains(&b.center()));
            prop_assert!(b.volume() >= 0.0);
        }

        #[test]
        fn prop_bisection_partitions(lows in proptest::collection::vec(-5.0..5.0f64, 2..5),
                                      widths in proptest::collection::vec(0.1..3.0f64, 2..5),
                                      t in proptest::collection::vec(0.0..1.0f64, 2..5)) {
            let n = lows.len().min(widths.len()).min(t.len());
            let highs: Vec<f64> = lows[..n].iter().zip(widths[..n].iter()).map(|(l, w)| l + w).collect();
            let b = BoxRegion::new(lows[..n].to_vec(), highs);
            let point: Vec<f64> = (0..n).map(|i| b.low(i) + t[i] * (b.high(i) - b.low(i))).collect();
            let (left, right) = b.bisect();
            prop_assert!(left.contains(&point) || right.contains(&point));
            prop_assert!(b.contains_box(&left) && b.contains_box(&right));
            prop_assert!((left.volume() + right.volume() - b.volume()).abs() < 1e-9 * (1.0 + b.volume()));
        }

        #[test]
        fn prop_samples_are_contained(seed in 0u64..1000,
                                       bounds in proptest::collection::vec(0.01..5.0f64, 1..5)) {
            let b = BoxRegion::symmetric(&bounds);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..20 {
                prop_assert!(b.contains(&b.sample(&mut rng)));
            }
        }
    }
}
