//! Finite rollouts of a controlled system.

use crate::SafetySpec;

/// A finite trajectory `s_0, s_1, …, s_T` together with the actions taken and
/// rewards received along the way.
///
/// Trajectories are produced by
/// [`EnvironmentContext::rollout`](crate::EnvironmentContext::rollout) and
/// consumed by the RL trainers (to estimate returns), the synthesis procedure
/// (to measure program/oracle proximity along visited states), and the
/// evaluation harness (to count safety violations and convergence steps).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    states: Vec<Vec<f64>>,
    actions: Vec<Vec<f64>>,
    rewards: Vec<f64>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Creates a trajectory starting from `initial_state` with no transitions yet.
    pub fn starting_at(initial_state: Vec<f64>) -> Self {
        Trajectory {
            states: vec![initial_state],
            actions: Vec::new(),
            rewards: Vec::new(),
        }
    }

    /// Appends a transition: the action taken in the last recorded state, the
    /// reward received, and the resulting next state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory has no starting state yet.
    pub fn push(&mut self, action: Vec<f64>, reward: f64, next_state: Vec<f64>) {
        assert!(
            !self.states.is_empty(),
            "a trajectory must be given a starting state before transitions are pushed"
        );
        self.actions.push(action);
        self.rewards.push(reward);
        self.states.push(next_state);
    }

    /// Number of transitions (one less than the number of states, zero when empty).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns true when no transition has been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// All visited states, including the initial one.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Actions taken, aligned with `states()[i] -> states()[i+1]`.
    pub fn actions(&self) -> &[Vec<f64>] {
        &self.actions
    }

    /// Rewards received, aligned with the actions.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// The first state, if any.
    pub fn initial_state(&self) -> Option<&[f64]> {
        self.states.first().map(Vec::as_slice)
    }

    /// The last state, if any.
    pub fn final_state(&self) -> Option<&[f64]> {
        self.states.last().map(Vec::as_slice)
    }

    /// Sum of all rewards.
    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }

    /// Discounted return `Σ γ^t r_t`.
    pub fn discounted_return(&self, gamma: f64) -> f64 {
        self.rewards
            .iter()
            .enumerate()
            .map(|(t, r)| gamma.powi(t as i32) * r)
            .sum()
    }

    /// Index of the first state violating `spec`, if any.
    pub fn first_unsafe_index(&self, spec: &SafetySpec) -> Option<usize> {
        self.states.iter().position(|s| spec.is_unsafe(s))
    }

    /// Returns true when some visited state violates `spec`.
    pub fn violates(&self, spec: &SafetySpec) -> bool {
        self.first_unsafe_index(spec).is_some()
    }

    /// Number of steps until the system first satisfies `is_steady` and
    /// remains steady for the rest of the trajectory; `None` if it never
    /// settles.  This is the "number of steps to reach a steady state"
    /// performance metric reported in Table 1.
    pub fn steps_to_steady(&self, mut is_steady: impl FnMut(&[f64]) -> bool) -> Option<usize> {
        let flags: Vec<bool> = self.states.iter().map(|s| is_steady(s)).collect();
        let mut settle_index = None;
        for (i, &steady) in flags.iter().enumerate() {
            if steady {
                if settle_index.is_none() {
                    settle_index = Some(i);
                }
            } else {
                settle_index = None;
            }
        }
        settle_index
    }

    /// Iterates over `(state, action, reward, next_state)` tuples.
    pub fn transitions(&self) -> impl Iterator<Item = (&[f64], &[f64], f64, &[f64])> + '_ {
        (0..self.len()).map(move |i| {
            (
                self.states[i].as_slice(),
                self.actions[i].as_slice(),
                self.rewards[i],
                self.states[i + 1].as_slice(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoxRegion;

    fn sample_trajectory() -> Trajectory {
        let mut t = Trajectory::starting_at(vec![1.0, 0.0]);
        t.push(vec![-0.5], -1.0, vec![0.5, -0.1]);
        t.push(vec![-0.2], -0.5, vec![0.1, 0.0]);
        t.push(vec![0.0], -0.1, vec![0.01, 0.0]);
        t
    }

    #[test]
    fn accessors_and_returns() {
        let t = sample_trajectory();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.states().len(), 4);
        assert_eq!(t.actions().len(), 3);
        assert_eq!(t.rewards(), &[-1.0, -0.5, -0.1]);
        assert_eq!(t.initial_state().unwrap(), &[1.0, 0.0]);
        assert_eq!(t.final_state().unwrap(), &[0.01, 0.0]);
        assert!((t.total_reward() + 1.6).abs() < 1e-12);
        assert!((t.discounted_return(0.5) - (-1.0 - 0.25 - 0.025)).abs() < 1e-12);
        assert!(Trajectory::new().is_empty());
        assert!(Trajectory::new().initial_state().is_none());
        assert_eq!(Trajectory::new().total_reward(), 0.0);
    }

    #[test]
    fn transitions_iterate_in_order() {
        let t = sample_trajectory();
        let collected: Vec<_> = t.transitions().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].0, &[1.0, 0.0]);
        assert_eq!(collected[0].3, &[0.5, -0.1]);
        assert_eq!(collected[2].2, -0.1);
    }

    #[test]
    fn safety_checks() {
        let t = sample_trajectory();
        let tight = SafetySpec::inside(BoxRegion::symmetric(&[0.6, 1.0]));
        let loose = SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0]));
        assert_eq!(t.first_unsafe_index(&tight), Some(0));
        assert!(t.violates(&tight));
        assert!(!t.violates(&loose));
        assert_eq!(t.first_unsafe_index(&loose), None);
    }

    #[test]
    fn steps_to_steady_requires_remaining_steady() {
        let t = sample_trajectory();
        // Steady once within 0.2 of the origin (in max-norm).
        let steps = t.steps_to_steady(|s| s.iter().all(|x| x.abs() <= 0.2));
        assert_eq!(steps, Some(2));
        // Never steady with an impossible threshold.
        assert_eq!(
            t.steps_to_steady(|s| s.iter().all(|x| x.abs() < 1e-9)),
            None
        );
        // A trajectory that leaves the steady region resets the counter.
        let mut osc = Trajectory::starting_at(vec![0.0]);
        osc.push(vec![0.0], 0.0, vec![1.0]);
        osc.push(vec![0.0], 0.0, vec![0.0]);
        assert_eq!(osc.steps_to_steady(|s| s[0].abs() < 0.5), Some(2));
    }

    #[test]
    #[should_panic(expected = "starting state")]
    fn push_without_start_panics() {
        let mut t = Trajectory::new();
        t.push(vec![0.0], 0.0, vec![0.0]);
    }
}
