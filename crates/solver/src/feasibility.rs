//! Iterative margin-maximization solver for systems of linear inequalities.
//!
//! The barrier-certificate synthesizer reduces "find coefficients `c` of the
//! invariant sketch satisfying the verification conditions on a set of
//! sampled states" to a homogeneous linear feasibility problem
//! `aᵢ · c ≥ margin` for every sampled constraint `aᵢ`.  This module solves
//! such problems with a deterministic averaged-perceptron / hinge-loss
//! subgradient scheme — the role Mosek's convex solver plays in the paper's
//! toolchain.  (Soundness never depends on this solver: every candidate it
//! produces is independently checked by the branch-and-bound verifier.)

/// A single linear constraint `coefficients · c ≥ rhs` on the unknown vector `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Coefficients of the constraint (one per unknown).
    pub coefficients: Vec<f64>,
    /// Right-hand side of the `≥` inequality.
    pub rhs: f64,
    /// Relative importance of this constraint when trading off violations.
    pub weight: f64,
}

impl LinearConstraint {
    /// Creates the constraint `coefficients · c ≥ rhs` with unit weight.
    pub fn at_least(coefficients: Vec<f64>, rhs: f64) -> Self {
        LinearConstraint {
            coefficients,
            rhs,
            weight: 1.0,
        }
    }

    /// Creates the constraint `coefficients · c ≤ rhs` (stored in `≥` form).
    pub fn at_most(coefficients: Vec<f64>, rhs: f64) -> Self {
        LinearConstraint {
            coefficients: coefficients.into_iter().map(|x| -x).collect(),
            rhs: -rhs,
            weight: 1.0,
        }
    }

    /// Sets the constraint weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight <= 0`.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "constraint weight must be positive");
        self.weight = weight;
        self
    }

    /// Signed slack `coefficients · c − rhs` of the constraint at `c`
    /// (non-negative means satisfied).
    pub fn slack(&self, c: &[f64]) -> f64 {
        self.coefficients
            .iter()
            .zip(c.iter())
            .map(|(a, x)| a * x)
            .sum::<f64>()
            - self.rhs
    }

    /// Returns true when the constraint holds at `c` within `tolerance`.
    pub fn satisfied(&self, c: &[f64], tolerance: f64) -> bool {
        self.slack(c) >= -tolerance
    }
}

/// Configuration of the feasibility solver.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityConfig {
    /// Maximum number of passes over the constraint set.
    pub max_iterations: usize,
    /// Initial step size of the subgradient updates.
    pub step_size: f64,
    /// Tolerance below which a constraint counts as satisfied.
    pub tolerance: f64,
    /// L2 regularization pulling the solution towards small norms, which
    /// keeps invariant coefficients well scaled.
    pub regularization: f64,
}

impl Default for FeasibilityConfig {
    fn default() -> Self {
        FeasibilityConfig {
            max_iterations: 4000,
            step_size: 0.05,
            tolerance: 1e-6,
            regularization: 1e-4,
        }
    }
}

/// Result of a feasibility solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilitySolution {
    /// The candidate solution vector.
    pub solution: Vec<f64>,
    /// Number of constraints violated (beyond tolerance) at the solution.
    pub violated: usize,
    /// The worst (most negative) slack over all constraints.
    pub worst_slack: f64,
    /// Iterations actually performed.
    pub iterations: usize,
}

impl FeasibilitySolution {
    /// Returns true when every constraint is satisfied within tolerance.
    pub fn is_feasible(&self) -> bool {
        self.violated == 0
    }
}

/// Solves a system of linear inequality constraints by weighted hinge-loss
/// subgradient descent, starting from `initial` (or zeros when `None`).
///
/// The returned candidate need not be feasible — callers must inspect
/// [`FeasibilitySolution::is_feasible`] (and, in the verification pipeline,
/// independently check the candidate soundly).
///
/// # Panics
///
/// Panics if the constraints do not all have the same number of
/// coefficients, or if that number is zero.
pub fn solve_feasibility(
    constraints: &[LinearConstraint],
    initial: Option<&[f64]>,
    config: &FeasibilityConfig,
) -> FeasibilitySolution {
    let dim = constraints
        .first()
        .map(|c| c.coefficients.len())
        .unwrap_or_else(|| initial.map_or(0, <[f64]>::len));
    assert!(
        dim > 0,
        "feasibility problems must have at least one unknown"
    );
    assert!(
        constraints.iter().all(|c| c.coefficients.len() == dim),
        "all constraints must have the same number of coefficients"
    );
    let mut c: Vec<f64> = match initial {
        Some(x) => {
            assert_eq!(x.len(), dim, "initial point has the wrong dimension");
            x.to_vec()
        }
        None => vec![0.0; dim],
    };
    let mut best = c.clone();
    let mut best_score = score(constraints, &c, config.tolerance);
    let mut iterations = 0;
    for iteration in 0..config.max_iterations {
        iterations = iteration + 1;
        let step = config.step_size / (1.0 + 0.01 * iteration as f64);
        let mut any_violated = false;
        // Subgradient of the weighted hinge loss Σ w_i · max(0, rhs_i − a_i·c).
        let mut gradient = vec![0.0; dim];
        for constraint in constraints {
            let slack = constraint.slack(&c);
            if slack < 0.0 {
                any_violated = true;
                for (g, a) in gradient.iter_mut().zip(constraint.coefficients.iter()) {
                    *g += constraint.weight * a;
                }
            }
        }
        if !any_violated {
            break;
        }
        let norm: f64 = gradient.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for (ci, g) in c.iter_mut().zip(gradient.iter()) {
                *ci += step * g / norm;
            }
        }
        for ci in c.iter_mut() {
            *ci -= step * config.regularization * *ci;
        }
        let current = score(constraints, &c, config.tolerance);
        if current < best_score {
            best_score = current;
            best = c.clone();
        }
    }
    // Prefer whichever of the current iterate / best-seen iterate violates less.
    let final_candidate = if score(constraints, &c, config.tolerance) <= best_score {
        c
    } else {
        best
    };
    let (violated, worst_slack) = summarize(constraints, &final_candidate, config.tolerance);
    FeasibilitySolution {
        solution: final_candidate,
        violated,
        worst_slack,
        iterations,
    }
}

fn score(constraints: &[LinearConstraint], c: &[f64], tolerance: f64) -> f64 {
    constraints
        .iter()
        .map(|k| {
            let s = k.slack(c);
            if s >= -tolerance {
                0.0
            } else {
                k.weight * (-s)
            }
        })
        .sum()
}

fn summarize(constraints: &[LinearConstraint], c: &[f64], tolerance: f64) -> (usize, f64) {
    let mut violated = 0;
    let mut worst = f64::INFINITY;
    for constraint in constraints {
        let s = constraint.slack(c);
        worst = worst.min(s);
        if s < -tolerance {
            violated += 1;
        }
    }
    if constraints.is_empty() {
        worst = 0.0;
    }
    (violated, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constraint_helpers() {
        let ge = LinearConstraint::at_least(vec![1.0, -1.0], 0.5);
        assert!((ge.slack(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!(ge.satisfied(&[1.0, 0.0], 1e-9));
        assert!(!ge.satisfied(&[0.0, 0.0], 1e-9));
        let le = LinearConstraint::at_most(vec![2.0], 1.0);
        assert!(le.satisfied(&[0.4], 1e-9));
        assert!(!le.satisfied(&[0.6], 1e-9));
        let weighted = ge.clone().with_weight(3.0);
        assert_eq!(weighted.weight, 3.0);
    }

    #[test]
    fn solves_a_separable_system() {
        // Find c with c0 ≥ 1, c1 ≤ -1, c0 + c1 ≥ -0.5.
        let constraints = vec![
            LinearConstraint::at_least(vec![1.0, 0.0], 1.0),
            LinearConstraint::at_most(vec![0.0, 1.0], -1.0),
            LinearConstraint::at_least(vec![1.0, 1.0], -0.5),
        ];
        let result = solve_feasibility(&constraints, None, &FeasibilityConfig::default());
        assert!(result.is_feasible(), "worst slack {}", result.worst_slack);
        assert!(result.solution[0] >= 1.0 - 1e-4);
        assert!(result.solution[1] <= -1.0 + 1e-4);
    }

    #[test]
    fn reports_infeasibility_of_contradictory_constraints() {
        let constraints = vec![
            LinearConstraint::at_least(vec![1.0], 1.0),
            LinearConstraint::at_most(vec![1.0], -1.0),
        ];
        let result = solve_feasibility(&constraints, None, &FeasibilityConfig::default());
        assert!(!result.is_feasible());
        assert!(result.violated >= 1);
        assert!(result.worst_slack < 0.0);
    }

    #[test]
    fn warm_start_is_respected_and_empty_constraints_are_trivial() {
        let result = solve_feasibility(&[], Some(&[0.25, -0.5]), &FeasibilityConfig::default());
        assert!(result.is_feasible());
        assert_eq!(result.solution, vec![0.25, -0.5]);
        assert_eq!(result.worst_slack, 0.0);
    }

    #[test]
    fn separating_hyperplane_for_two_point_clouds() {
        // Classic margin problem: find c, with c·x ≥ 1 for "positive" points
        // and c·x ≤ -1 for "negative" points.
        let positives = [[1.0, 1.0], [1.5, 0.5], [2.0, 1.2]];
        let negatives = [[-1.0, -1.0], [-1.2, -0.3], [-0.5, -1.5]];
        let mut constraints = Vec::new();
        for p in positives {
            constraints.push(LinearConstraint::at_least(p.to_vec(), 1.0));
        }
        for n in negatives {
            constraints.push(LinearConstraint::at_most(n.to_vec(), -1.0));
        }
        let result = solve_feasibility(&constraints, None, &FeasibilityConfig::default());
        assert!(result.is_feasible(), "worst slack {}", result.worst_slack);
        for p in positives {
            assert!(p[0] * result.solution[0] + p[1] * result.solution[1] >= 1.0 - 1e-3);
        }
        for n in negatives {
            assert!(n[0] * result.solution[0] + n[1] * result.solution[1] <= -1.0 + 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "same number of coefficients")]
    fn mismatched_constraint_dimensions_panic() {
        let constraints = vec![
            LinearConstraint::at_least(vec![1.0], 0.0),
            LinearConstraint::at_least(vec![1.0, 2.0], 0.0),
        ];
        let _ = solve_feasibility(&constraints, None, &FeasibilityConfig::default());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_feasible_systems_are_solved(direction in proptest::collection::vec(-1.0..1.0f64, 3),
                                             count in 1usize..12) {
            // Build constraints all satisfied by the point 10·d (for a nonzero
            // direction d): a_i = d + noise_i with rhs small.
            let norm: f64 = direction.iter().map(|x| x * x).sum::<f64>();
            prop_assume!(norm > 0.1);
            let constraints: Vec<LinearConstraint> = (0..count)
                .map(|i| {
                    let scale = 1.0 + (i as f64) * 0.1;
                    LinearConstraint::at_least(direction.iter().map(|x| x * scale).collect(), 0.5)
                })
                .collect();
            let result = solve_feasibility(&constraints, None, &FeasibilityConfig::default());
            prop_assert!(result.is_feasible(), "worst slack {}", result.worst_slack);
        }
    }
}
