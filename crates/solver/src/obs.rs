//! Solver metrics: branch-and-bound work counters and query-cache
//! traffic, registered in the process-wide [`vrl_obs`] registry.
//!
//! The proof loop is a hot path, so per-box accounting goes through
//! [`BbTally`]: plain [`Cell`] increments while the query runs, one
//! relaxed atomic `add` per counter when the query finishes (the tally
//! flushes on `Drop`, which covers every return path of
//! [`crate::prove_bound`] including counterexample and budget-exhausted
//! exits).  Cache traffic is mirrored straight from
//! [`crate::CompiledQueryCache::get_or_compile`] — registration is
//! lazy, the steady-state cost is one relaxed RMW per lookup.
//!
//! Instrumentation is strictly read-only: it observes values the proof
//! loop already computed, so outcomes are bit-identical with or without
//! the registry (the conformance sweeps in `vrl-bench` exercise this).

use std::cell::Cell;
use std::sync::LazyLock;
use vrl_obs::{registry, Counter};

macro_rules! solver_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Lazily registered handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: LazyLock<&'static Counter> =
                LazyLock::new(|| registry().counter($metric, $help));
            *HANDLE
        }
    };
}

solver_counter!(
    bb_queries,
    "vrl_solver_bb_queries_total",
    "Branch-and-bound bound queries started."
);
solver_counter!(
    bb_boxes,
    "vrl_solver_bb_boxes_total",
    "Boxes popped off branch-and-bound frontiers."
);
solver_counter!(
    bb_waves,
    "vrl_solver_bb_waves_total",
    "Lane waves expanded by branch-and-bound frontiers."
);
solver_counter!(
    bb_guard_prunes,
    "vrl_solver_bb_guard_prunes_total",
    "Boxes excluded by guard pruning before objective evaluation."
);
solver_counter!(
    bb_counterexamples,
    "vrl_solver_bb_counterexamples_total",
    "Branch-and-bound queries refuted by a genuine counterexample."
);
solver_counter!(
    min_boxes,
    "vrl_solver_min_boxes_total",
    "Boxes refined by sound_minimum best-first searches."
);
solver_counter!(
    cache_hits,
    "vrl_solver_query_cache_hits_total",
    "Compiled-query-cache lookups answered from the cache."
);
solver_counter!(
    cache_misses,
    "vrl_solver_query_cache_misses_total",
    "Compiled-query-cache lookups that had to compile."
);
solver_counter!(
    cache_evictions,
    "vrl_solver_query_cache_evictions_total",
    "Compiled-query-cache entries evicted by the capacity bound."
);
solver_counter!(
    shared_cache_hits,
    "vrl_solver_shared_query_cache_hits_total",
    "Thread-cache misses answered by the process-wide compiled-family store."
);
solver_counter!(
    shared_cache_misses,
    "vrl_solver_shared_query_cache_misses_total",
    "Compiled-family compilations new to the whole process."
);
solver_counter!(
    shared_cache_contended,
    "vrl_solver_shared_query_cache_contended_total",
    "Shared-store shard-lock acquisitions that found the lock held."
);

/// Forces registration of every solver metric so a scrape shows the
/// full solver series set (at zero) before any proof has run.
pub fn install_metrics() {
    let _ = bb_queries();
    let _ = bb_boxes();
    let _ = bb_waves();
    let _ = bb_guard_prunes();
    let _ = bb_counterexamples();
    let _ = min_boxes();
    let _ = cache_hits();
    let _ = cache_misses();
    let _ = cache_evictions();
    let _ = shared_cache_hits();
    let _ = shared_cache_misses();
    let _ = shared_cache_contended();
}

/// Per-query work tally for one [`crate::prove_bound`] call.
///
/// Increments are non-atomic [`Cell`] bumps; the flush to the global
/// counters happens exactly once, on `Drop`, whichever way the query
/// returns.
pub(crate) struct BbTally {
    boxes: Cell<u64>,
    waves: Cell<u64>,
    prunes: Cell<u64>,
    counterexample: Cell<bool>,
}

impl BbTally {
    /// Starts a tally (and counts the query itself).
    pub(crate) fn start() -> Self {
        bb_queries().inc();
        BbTally {
            boxes: Cell::new(0),
            waves: Cell::new(0),
            prunes: Cell::new(0),
            counterexample: Cell::new(false),
        }
    }

    /// Counts one popped box.
    #[inline]
    pub(crate) fn box_examined(&self) {
        self.boxes.set(self.boxes.get() + 1);
    }

    /// Counts one expanded wave.
    #[inline]
    pub(crate) fn wave(&self) {
        self.waves.set(self.waves.get() + 1);
    }

    /// Counts one guard-pruned box.
    #[inline]
    pub(crate) fn guard_prune(&self) {
        self.prunes.set(self.prunes.get() + 1);
    }

    /// Marks the query as refuted by a counterexample.
    #[inline]
    pub(crate) fn found_counterexample(&self) {
        self.counterexample.set(true);
    }
}

impl Drop for BbTally {
    fn drop(&mut self) {
        bb_boxes().add(self.boxes.get());
        bb_waves().add(self.waves.get());
        bb_guard_prunes().add(self.prunes.get());
        if self.counterexample.get() {
            bb_counterexamples().inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_flushes_on_drop() {
        let queries_before = bb_queries().get();
        let boxes_before = bb_boxes().get();
        let cex_before = bb_counterexamples().get();
        {
            let tally = BbTally::start();
            tally.box_examined();
            tally.box_examined();
            tally.wave();
            tally.guard_prune();
            tally.found_counterexample();
        }
        assert_eq!(bb_queries().get() - queries_before, 1);
        assert_eq!(bb_boxes().get() - boxes_before, 2);
        assert_eq!(bb_counterexamples().get() - cex_before, 1);
    }

    #[test]
    fn install_registers_all_series() {
        install_metrics();
        let text = registry().render_prometheus();
        for series in [
            "vrl_solver_bb_queries_total",
            "vrl_solver_bb_boxes_total",
            "vrl_solver_bb_waves_total",
            "vrl_solver_bb_guard_prunes_total",
            "vrl_solver_bb_counterexamples_total",
            "vrl_solver_min_boxes_total",
            "vrl_solver_query_cache_hits_total",
            "vrl_solver_query_cache_misses_total",
            "vrl_solver_query_cache_evictions_total",
            "vrl_solver_shared_query_cache_hits_total",
            "vrl_solver_shared_query_cache_misses_total",
            "vrl_solver_shared_query_cache_contended_total",
        ] {
            assert!(text.contains(series), "missing series {series}");
        }
    }
}
