//! Constraint-solving substrate for the verifiable-RL framework.
//!
//! The paper's toolchain relies on two external solvers: Mosek (sum-of-squares
//! programming to find barrier-certificate coefficients) and Z3 (to check
//! coverage of the initial state space).  This crate provides the self-contained
//! replacements used by `vrl-verify`:
//!
//! * [`prove_bound`] / [`prove_nonpositive`] / [`prove_positive`] — sound
//!   interval branch-and-bound proving of polynomial inequalities over boxes,
//!   optionally restricted by polynomial guards (used both for the
//!   verification conditions and for the CEGIS coverage check);
//! * [`solve_feasibility`] — an iterative margin-maximization solver for the
//!   sampled linear constraints that candidate invariant coefficients must
//!   satisfy;
//! * [`solve_discrete_lyapunov`] — exact quadratic certificates for linear
//!   closed loops, the scalable back-end for high-dimensional LTI benchmarks.
//!
//! # Branch-and-bound evaluation and the query cache
//!
//! Every `prove_*` query compiles its objective and guards into one flat
//! `objective + guards` family and expands its frontier
//! [`vrl_poly::LANE_WIDTH`] boxes per sweep through the lane-batched
//! interval kernels; both are bit-for-bit outcome-neutral versus the scalar
//! path (kept behind [`BranchBoundConfig::lane_batched`]` = false` as the
//! differential-testing reference).  Refuting queries additionally get a
//! counterexample-first window: the opening boxes are traversed one per
//! wave in classic depth-first order (see
//! [`BranchBoundConfig::probe_boxes`]), so refutations surface as fast as a
//! plain depth-first probe.  Compiled families are memoized in a two-level
//! [`CompiledQueryCache`] keyed by the exact term content of the query
//! polynomials — a lock-free per-thread L1 backed by a process-wide
//! sharded L2, so CEGIS loops that re-prove the same certificate family
//! (every verification back-end and [`sound_minimum`] route through the
//! cache) skip recompilation entirely, workloads fanning one family across
//! worker threads compile it once per process, and a hit can never change
//! an outcome because the cached kernel is exactly what a fresh
//! compilation would produce.  Both levels are bounded (LRU eviction; see
//! [`DEFAULT_QUERY_CACHE_CAPACITY`]); [`query_cache_stats`] /
//! [`reset_query_cache`] expose the per-thread counters for tests and
//! benches, and [`shared_query_cache_stats`] the process-wide ones.  Cache
//! traffic and branch-and-bound work tallies (queries, boxes, waves,
//! prunes, counterexamples) are additionally mirrored into the
//! process-wide [`vrl_obs`] registry for `GET /metrics` scrapes;
//! [`install_metrics`] forces registration of the full series set.
//!
//! # Examples
//!
//! ```
//! use vrl_poly::{Interval, Polynomial};
//! use vrl_solver::{prove_nonpositive, BranchBoundConfig};
//!
//! // x² − 1 ≤ 0 on [−1, 1]
//! let x = Polynomial::variable(0, 1);
//! let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
//! let outcome = prove_nonpositive(&p, &[Interval::new(-1.0, 1.0)], &BranchBoundConfig::default());
//! assert!(outcome.is_proved());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod branch_bound;
mod cache;
mod feasibility;
mod lyapunov;
mod obs;

pub use branch_bound::{
    prove_bound, prove_nonpositive, prove_positive, sound_minimum, sound_minimum_with, BoundQuery,
    BranchBoundConfig, ProofOutcome,
};
pub use cache::{
    query_cache_stats, reset_query_cache, reset_shared_query_cache, shared_query_cache_stats,
    with_query_cache, CompiledQueryCache, QueryCacheStats, SharedQueryCacheStats,
    DEFAULT_QUERY_CACHE_CAPACITY,
};
pub use feasibility::{
    solve_feasibility, FeasibilityConfig, FeasibilitySolution, LinearConstraint,
};
pub use lyapunov::{decrease_certificate, solve_discrete_lyapunov, LyapunovError};
pub use obs::install_metrics;
