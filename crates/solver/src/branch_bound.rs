//! Sound branch-and-bound proving of polynomial inequalities over boxes.
//!
//! This module is the framework's substitute for the SMT/SOS back-ends the
//! paper uses (Z3 and Mosek): it soundly decides questions of the form
//! "is `p(x) ≤ bound` for every `x` in a box (possibly restricted to the
//! region where a guard polynomial `g(x) ≤ 0` holds)?" by recursively
//! bisecting the box and evaluating conservative interval enclosures.
//!
//! A returned [`ProofOutcome::Proved`] is sound: interval evaluation always
//! over-approximates the true range.  A returned
//! [`ProofOutcome::Counterexample`] carries a concrete point at which the
//! inequality genuinely fails (verified by exact evaluation), which is what
//! the CEGIS loops feed back into synthesis.

use vrl_poly::{CompiledPolynomial, Interval, PolyScratch, Polynomial};

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundConfig {
    /// Maximum number of boxes examined before giving up with
    /// [`ProofOutcome::Unknown`].
    pub max_boxes: usize,
    /// Boxes whose widest side is below this width are no longer split; if
    /// such a box can neither be certified nor refuted the search reports
    /// [`ProofOutcome::Unknown`].
    pub min_width: f64,
    /// Numerical slack: the inequality `p ≤ bound` is certified when the
    /// interval upper bound is `≤ bound + tolerance`.
    pub tolerance: f64,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_boxes: 200_000,
            min_width: 1e-4,
            tolerance: 1e-9,
        }
    }
}

/// Result of a branch-and-bound proof attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofOutcome {
    /// The inequality holds everywhere on the (guarded) box.
    Proved {
        /// Number of boxes examined.
        boxes_examined: usize,
    },
    /// A concrete point in the (guarded) box where the inequality fails.
    Counterexample {
        /// The witness point.
        point: Vec<f64>,
        /// Value of the objective polynomial at the witness.
        value: f64,
    },
    /// The search budget was exhausted before a decision was reached.
    Unknown {
        /// Number of boxes examined.
        boxes_examined: usize,
        /// The most suspicious box (smallest certified margin) seen.
        worst_box: Option<(Vec<f64>, Vec<f64>)>,
    },
}

impl ProofOutcome {
    /// Returns true for [`ProofOutcome::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofOutcome::Proved { .. })
    }

    /// Returns the counterexample point, if any.
    pub fn counterexample(&self) -> Option<&[f64]> {
        match self {
            ProofOutcome::Counterexample { point, .. } => Some(point),
            _ => None,
        }
    }
}

/// A query of the form: for all `x` in `domain` with `guards_i(x) ≤ 0` for
/// every guard, prove `objective(x) ≤ bound`.
#[derive(Debug, Clone)]
pub struct BoundQuery<'a> {
    objective: &'a Polynomial,
    bound: f64,
    guards: Vec<&'a Polynomial>,
}

impl<'a> BoundQuery<'a> {
    /// Creates a query proving `objective(x) ≤ bound` on the whole domain.
    pub fn new(objective: &'a Polynomial, bound: f64) -> Self {
        BoundQuery {
            objective,
            bound,
            guards: Vec::new(),
        }
    }

    /// Restricts the query to the region where `guard(x) ≤ 0`.
    ///
    /// Several guards may be added; all must hold for a point to be relevant.
    ///
    /// # Panics
    ///
    /// Panics if the guard's variable count differs from the objective's.
    pub fn with_guard(mut self, guard: &'a Polynomial) -> Self {
        assert_eq!(
            guard.nvars(),
            self.objective.nvars(),
            "guard and objective must range over the same variables"
        );
        self.guards.push(guard);
        self
    }

    /// The objective polynomial.
    pub fn objective(&self) -> &Polynomial {
        self.objective
    }

    /// The bound being proved.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// Attempts to prove a [`BoundQuery`] over an axis-aligned box given as
/// per-dimension intervals.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the objective's variable count.
pub fn prove_bound(
    query: &BoundQuery<'_>,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    assert_eq!(
        domain.len(),
        query.objective.nvars(),
        "domain dimension must match the polynomial"
    );
    // Compile the objective and guards once per query: every box the search
    // examines evaluates through the flat kernels (bit-for-bit identical to
    // the sparse reference evaluators, so outcomes are unchanged).
    let objective = query.objective.compile();
    let mut scratch = PolyScratch::new();
    // Guard pre-check hoisting: a guard whose enclosure over the *root*
    // domain is already non-positive holds at every point of every sub-box —
    // it can never prune a box and always passes the counterexample check,
    // so it is dropped from the per-box work entirely.
    let guards: Vec<CompiledPolynomial> = query
        .guards
        .iter()
        .map(|g| g.compile())
        .filter(|g| g.eval_interval_with(domain, &mut scratch).hi() > 0.0)
        .collect();
    // Reusable candidate-point buffer for the counterexample probes.
    let mut point = vec![0.0; domain.len()];
    let mut stack: Vec<Vec<Interval>> = vec![domain.to_vec()];
    let mut boxes_examined = 0usize;
    let mut worst_box: Option<(Vec<f64>, Vec<f64>, f64)> = None;
    let mut undecided_smallest = false;

    while let Some(current) = stack.pop() {
        boxes_examined += 1;
        if boxes_examined > config.max_boxes {
            return ProofOutcome::Unknown {
                boxes_examined,
                worst_box: worst_box.map(|(l, h, _)| (l, h)),
            };
        }
        // Guard pruning: if any guard is certainly positive on this box, no
        // point of the box is relevant to the query.
        let mut guard_prunes = false;
        for guard in &guards {
            if guard.eval_interval_with(&current, &mut scratch).lo() > 0.0 {
                guard_prunes = true;
                break;
            }
        }
        if guard_prunes {
            continue;
        }
        let enclosure = objective.eval_interval_with(&current, &mut scratch);
        if enclosure.hi() <= query.bound + config.tolerance {
            continue; // certified on this box
        }
        // Try to produce a genuine counterexample at the box midpoint (and
        // at the corners bounding the enclosure) before splitting.
        if let Some(cex) = find_counterexample(
            &objective,
            &guards,
            query.bound,
            &current,
            &mut point,
            &mut scratch,
        ) {
            return cex;
        }
        let widest = current.iter().map(Interval::width).fold(0.0f64, f64::max);
        if widest <= config.min_width {
            // Cannot split further and cannot decide: record and continue;
            // the overall result will be Unknown (sound: we never claim a proof).
            let margin = enclosure.hi() - query.bound;
            let lows: Vec<f64> = current.iter().map(Interval::lo).collect();
            let highs: Vec<f64> = current.iter().map(Interval::hi).collect();
            match &worst_box {
                Some((_, _, m)) if *m >= margin => {}
                _ => worst_box = Some((lows, highs, margin)),
            }
            undecided_smallest = true;
            continue;
        }
        // Split along the widest dimension.
        let split_dim = current
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.width()
                    .partial_cmp(&b.1.width())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let (left, right) = current[split_dim].bisect();
        let mut left_box = current.clone();
        left_box[split_dim] = left;
        let mut right_box = current;
        right_box[split_dim] = right;
        stack.push(left_box);
        stack.push(right_box);
    }

    if undecided_smallest {
        ProofOutcome::Unknown {
            boxes_examined,
            worst_box: worst_box.map(|(l, h, _)| (l, h)),
        }
    } else {
        ProofOutcome::Proved { boxes_examined }
    }
}

/// Attempts to prove `p(x) ≤ 0` for all `x` in the box.
pub fn prove_nonpositive(
    p: &Polynomial,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    prove_bound(&BoundQuery::new(p, 0.0), domain, config)
}

/// Attempts to prove `p(x) > 0` (strictly) for all `x` in the box, by proving
/// `-p(x) ≤ -margin` for a tiny positive margin.
pub fn prove_positive(
    p: &Polynomial,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    let negated = -p;
    let outcome = prove_bound(&BoundQuery::new(&negated, 0.0), domain, config);
    match outcome {
        ProofOutcome::Counterexample { point, value } => ProofOutcome::Counterexample {
            point,
            value: -value,
        },
        other => other,
    }
}

/// Computes a sound lower bound of `p` over the box by branch-and-bound
/// refinement: the returned value is `≤ min_{x ∈ domain} p(x)`, and
/// converges towards it as `max_boxes` grows.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the polynomial's variable count.
pub fn sound_minimum(p: &Polynomial, domain: &[Interval], max_boxes: usize) -> f64 {
    assert_eq!(
        domain.len(),
        p.nvars(),
        "domain dimension must match the polynomial"
    );
    // Compile once; every bound refinement below runs on the flat kernels.
    let compiled = p.compile();
    let mut scratch = PolyScratch::new();
    // One reusable midpoint buffer instead of a fresh `collect()` per child.
    let mut midpoint = vec![0.0; domain.len()];
    for (m, iv) in midpoint.iter_mut().zip(domain.iter()) {
        *m = iv.midpoint();
    }
    // Best-first search on the interval lower bound.
    let mut queue: Vec<(f64, Vec<Interval>)> = vec![(
        compiled.eval_interval_with(domain, &mut scratch).lo(),
        domain.to_vec(),
    )];
    let mut upper = compiled.eval_with(&midpoint, &mut scratch);
    let mut examined = 0usize;
    while examined < max_boxes {
        // Pop the box with the smallest lower bound.
        let index = match queue.iter().enumerate().min_by(|a, b| {
            a.1 .0
                .partial_cmp(&b.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            Some((i, _)) => i,
            None => break,
        };
        let (lower, current) = queue.swap_remove(index);
        examined += 1;
        if upper - lower < 1e-9 * (1.0 + upper.abs()) {
            queue.push((lower, current));
            break;
        }
        let widest = current.iter().map(Interval::width).fold(0.0f64, f64::max);
        if widest < 1e-6 {
            queue.push((lower, current));
            break;
        }
        let split_dim = current
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.width()
                    .partial_cmp(&b.1.width())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let (left, right) = current[split_dim].bisect();
        for half in [left, right] {
            let mut child = current.clone();
            child[split_dim] = half;
            let child_lower = compiled.eval_interval_with(&child, &mut scratch).lo();
            for (m, iv) in midpoint.iter_mut().zip(child.iter()) {
                *m = iv.midpoint();
            }
            upper = upper.min(compiled.eval_with(&midpoint, &mut scratch));
            queue.push((child_lower, child));
        }
    }
    queue
        .iter()
        .map(|(lo, _)| *lo)
        .fold(f64::INFINITY, f64::min)
        .min(upper)
}

/// Probes the box midpoint and both extreme corners for a genuine
/// counterexample, reusing `point` as the candidate buffer so subdivision
/// allocates nothing until a witness is actually found.
fn find_counterexample(
    objective: &CompiledPolynomial,
    guards: &[CompiledPolynomial],
    bound: f64,
    domain: &[Interval],
    point: &mut [f64],
    scratch: &mut PolyScratch,
) -> Option<ProofOutcome> {
    for pick in [Interval::midpoint, Interval::lo, Interval::hi] {
        for (slot, iv) in point.iter_mut().zip(domain.iter()) {
            *slot = pick(iv);
        }
        let satisfies_guards = guards.iter().all(|g| g.eval_with(point, scratch) <= 0.0);
        if !satisfies_guards {
            continue;
        }
        let value = objective.eval_with(point, scratch);
        if value > bound {
            return Some(ProofOutcome::Counterexample {
                point: point.to_vec(),
                value,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vrl_poly::monomial_basis;

    fn interval_box(bounds: &[(f64, f64)]) -> Vec<Interval> {
        bounds.iter().map(|&(l, h)| Interval::new(l, h)).collect()
    }

    #[test]
    fn proves_simple_nonpositivity() {
        // p = x² - 1 ≤ 0 on [-1, 1]
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
        let outcome = prove_nonpositive(
            &p,
            &interval_box(&[(-1.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn finds_counterexamples() {
        // p = x² - 1 > 0 at x = 2
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
        let outcome = prove_nonpositive(
            &p,
            &interval_box(&[(-2.0, 2.0)]),
            &BranchBoundConfig::default(),
        );
        let point = outcome
            .counterexample()
            .expect("must find a counterexample");
        assert!(p.eval(point) > 0.0);
        assert!(!outcome.is_proved());
    }

    #[test]
    fn proves_strict_positivity() {
        // p = x² + 0.1 > 0 everywhere
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) + &Polynomial::constant(0.1, 1);
        let outcome = prove_positive(
            &p,
            &interval_box(&[(-3.0, 3.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved());
        // p = x² - 0.5 is not positive near zero.
        let q = &(&x * &x) - &Polynomial::constant(0.5, 1);
        let refuted = prove_positive(
            &q,
            &interval_box(&[(-3.0, 3.0)]),
            &BranchBoundConfig::default(),
        );
        let cex = refuted
            .counterexample()
            .expect("not positive near the origin");
        assert!(q.eval(cex) <= 0.0);
    }

    #[test]
    fn guards_restrict_the_query() {
        // Objective x ≤ 0.5 fails on [0, 1] in general, but holds on the
        // guarded region where g(x) = x - 0.25 ≤ 0.
        let x = Polynomial::variable(0, 1);
        let bound_query = BoundQuery::new(&x, 0.5);
        let failing = prove_bound(
            &bound_query,
            &interval_box(&[(0.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(failing.counterexample().is_some());
        let guard = &x - &Polynomial::constant(0.25, 1);
        let guarded_query = BoundQuery::new(&x, 0.5).with_guard(&guard);
        let outcome = prove_bound(
            &guarded_query,
            &interval_box(&[(0.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn two_dimensional_barrier_style_query() {
        // E = x² + y² - 1; prove E ≤ 0 implies (0.9·x)² + (0.9·y)² - 1 ≤ 0
        // (a contraction keeps the sublevel set invariant).
        let nvars = 2;
        let x = Polynomial::variable(0, nvars);
        let y = Polynomial::variable(1, nvars);
        let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, nvars);
        let contracted = &(&(&x * &x).scaled(0.81) + &(&y * &y).scaled(0.81))
            - &Polynomial::constant(1.0, nvars);
        let query = BoundQuery::new(&contracted, 0.0).with_guard(&e);
        let outcome = prove_bound(
            &query,
            &interval_box(&[(-2.0, 2.0), (-2.0, 2.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A polynomial that is extremely close to the bound everywhere forces
        // deep subdivision; with a tiny budget the answer must be Unknown,
        // never a wrong Proved.
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x).scaled(1e-12) - &Polynomial::constant(0.0, 1);
        let config = BranchBoundConfig {
            max_boxes: 3,
            min_width: 1e-9,
            tolerance: 0.0,
        };
        let outcome = prove_bound(
            &BoundQuery::new(&p, -1e-30),
            &interval_box(&[(-1.0, 1.0)]),
            &config,
        );
        assert!(matches!(
            outcome,
            ProofOutcome::Unknown { .. } | ProofOutcome::Counterexample { .. }
        ));
        assert!(!outcome.is_proved());
    }

    #[test]
    fn min_width_floor_reports_unknown_not_proved() {
        // p = x² is ≤ 0 only at a single point; asking for p ≤ -1e-9 cannot be
        // proved, and near x = 0 no counterexample with p > -1e-9... actually
        // p(0) = 0 > -1e-9 so a counterexample is found immediately.
        let x = Polynomial::variable(0, 1);
        let p = &x * &x;
        let outcome = prove_bound(
            &BoundQuery::new(&p, -1e-9),
            &interval_box(&[(-1.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.counterexample().is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_proved_queries_hold_on_samples(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
            shift in 0.5..3.0f64,
            tx in 0.0..1.0f64, ty in 0.0..1.0f64,
        ) {
            // p - (max over a sample grid + shift) must be provably ≤ 0 … and
            // if the prover says so, random samples must satisfy it.
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let enclosure = p.eval_interval(&domain);
            let bound = enclosure.hi() + shift;
            let outcome = prove_bound(&BoundQuery::new(&p, bound), &domain, &BranchBoundConfig::default());
            prop_assert!(outcome.is_proved());
            let sample = [-1.0 + 2.0 * tx, -1.0 + 2.0 * ty];
            prop_assert!(p.eval(&sample) <= bound + 1e-9);
        }

        #[test]
        fn prop_counterexamples_are_genuine(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
        ) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let outcome = prove_bound(&BoundQuery::new(&p, p.eval(&[0.0, 0.0]) - 0.5), &domain, &BranchBoundConfig::default());
            if let Some(point) = outcome.counterexample() {
                prop_assert!(p.eval(point) > p.eval(&[0.0, 0.0]) - 0.5);
            }
        }
    }
}
