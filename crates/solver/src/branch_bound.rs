//! Sound branch-and-bound proving of polynomial inequalities over boxes.
//!
//! This module is the framework's substitute for the SMT/SOS back-ends the
//! paper uses (Z3 and Mosek): it soundly decides questions of the form
//! "is `p(x) ≤ bound` for every `x` in a box (possibly restricted to the
//! region where a guard polynomial `g(x) ≤ 0` holds)?" by recursively
//! bisecting the box and evaluating conservative interval enclosures.
//!
//! A returned [`ProofOutcome::Proved`] is sound: interval evaluation always
//! over-approximates the true range.  A returned
//! [`ProofOutcome::Counterexample`] carries a concrete point at which the
//! inequality genuinely fails (verified by exact evaluation), which is what
//! the CEGIS loops feed back into synthesis.
//!
//! # Evaluation strategy
//!
//! The objective and guards of a query are compiled together into one
//! [`CompiledPolySet`] — pulled from the two-level
//! [`crate::CompiledQueryCache`], so CEGIS loops that re-prove the same
//! certificate family never recompile — and the search expands its frontier
//! [`vrl_poly::LANE_WIDTH`] boxes per sweep through the lane-batched
//! interval kernels.  Both choices are outcome-neutral: the cached compiled
//! family is exactly what a fresh compilation would produce, and each lane
//! of a batched sweep is bit-identical to the scalar interval kernel, so
//! the search examines the same boxes in the same order and returns the
//! same verdicts and witnesses as the scalar path
//! (`BranchBoundConfig::lane_batched = false`, which remains available as
//! the differential-testing reference).

use vrl_poly::{
    BatchBoxes, BatchPoints, CompiledPolySet, Interval, PolyScratch, Polynomial, LANE_WIDTH,
};

use crate::cache::with_query_cache;

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundConfig {
    /// Maximum number of boxes examined before giving up with
    /// [`ProofOutcome::Unknown`].
    pub max_boxes: usize,
    /// Boxes whose widest side is below this width are no longer split; if
    /// such a box can neither be certified nor refuted the search reports
    /// [`ProofOutcome::Unknown`].
    pub min_width: f64,
    /// Numerical slack: the inequality `p ≤ bound` is certified when the
    /// interval upper bound is `≤ bound + tolerance`.
    pub tolerance: f64,
    /// Expand the frontier [`vrl_poly::LANE_WIDTH`] boxes per sweep through
    /// the lane-batched interval kernels (the default).  `false` evaluates
    /// one box at a time through the scalar kernels; both modes examine the
    /// same boxes in the same order and return bit-identical outcomes — the
    /// scalar mode exists as the reference arm of the differential
    /// conformance tests.
    pub lane_batched: bool,
    /// Counterexample-first probing window: while fewer than this many
    /// boxes have been examined, the frontier advances **one box at a
    /// time** — exactly the classic depth-first probe order, in which each
    /// undecided box's midpoint and corners are point-evaluated through the
    /// compiled kernels before it is split, so refuting queries surface
    /// their witness as fast as the seed DFS with no speculative wave work
    /// wasted past it.  Past the threshold the search is almost certainly
    /// proving, not refuting, and the frontier widens to full
    /// [`LANE_WIDTH`] waves for lane-batched throughput.  The threshold is
    /// compared against the deterministic box counter, so the scalar and
    /// batched modes pop identical boxes in identical order.  `0` skips the
    /// window and opens at full wave width immediately.
    pub probe_boxes: usize,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_boxes: 200_000,
            min_width: 1e-4,
            tolerance: 1e-9,
            lane_batched: true,
            probe_boxes: 1024,
        }
    }
}

/// Result of a branch-and-bound proof attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofOutcome {
    /// The inequality holds everywhere on the (guarded) box.
    Proved {
        /// Number of boxes examined.
        boxes_examined: usize,
    },
    /// A concrete point in the (guarded) box where the inequality fails.
    Counterexample {
        /// The witness point.
        point: Vec<f64>,
        /// Value of the objective polynomial at the witness.
        value: f64,
    },
    /// The search budget was exhausted before a decision was reached.
    Unknown {
        /// Number of boxes examined.
        boxes_examined: usize,
        /// The most suspicious box (smallest certified margin) seen.
        worst_box: Option<(Vec<f64>, Vec<f64>)>,
    },
}

impl ProofOutcome {
    /// Returns true for [`ProofOutcome::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofOutcome::Proved { .. })
    }

    /// Returns the counterexample point, if any.
    pub fn counterexample(&self) -> Option<&[f64]> {
        match self {
            ProofOutcome::Counterexample { point, .. } => Some(point),
            _ => None,
        }
    }
}

/// A query of the form: for all `x` in `domain` with `guards_i(x) ≤ 0` for
/// every guard, prove `objective(x) ≤ bound`.
#[derive(Debug, Clone)]
pub struct BoundQuery<'a> {
    objective: &'a Polynomial,
    bound: f64,
    guards: Vec<&'a Polynomial>,
}

impl<'a> BoundQuery<'a> {
    /// Creates a query proving `objective(x) ≤ bound` on the whole domain.
    pub fn new(objective: &'a Polynomial, bound: f64) -> Self {
        BoundQuery {
            objective,
            bound,
            guards: Vec::new(),
        }
    }

    /// Restricts the query to the region where `guard(x) ≤ 0`.
    ///
    /// Several guards may be added; all must hold for a point to be relevant.
    ///
    /// # Panics
    ///
    /// Panics if the guard's variable count differs from the objective's.
    pub fn with_guard(mut self, guard: &'a Polynomial) -> Self {
        assert_eq!(
            guard.nvars(),
            self.objective.nvars(),
            "guard and objective must range over the same variables"
        );
        self.guards.push(guard);
        self
    }

    /// The objective polynomial.
    pub fn objective(&self) -> &Polynomial {
        self.objective
    }

    /// The bound being proved.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// Attempts to prove a [`BoundQuery`] over an axis-aligned box given as
/// per-dimension intervals.
///
/// The compiled `objective + guards` family is pulled from the two-level
/// [`crate::CompiledQueryCache`], and the frontier is expanded in waves of
/// up to [`LANE_WIDTH`] boxes: each wave pops the top of the work stack,
/// evaluates the whole family over every popped box in one lane-batched
/// sweep (one interval power-table fill per variable for the wave), and
/// then processes the boxes in pop order — prune, certify, probe for a
/// counterexample, or split, with children pushed for a later wave.  The
/// opening [`BranchBoundConfig::probe_boxes`] boxes run one per wave — the
/// classic counterexample-first DFS order, so refutations pay for no
/// speculative siblings — before the frontier widens to full lanes.  The
/// scalar mode ([`BranchBoundConfig::lane_batched`]` = false`) pops the
/// **same** waves in the same order and evaluates each box through the
/// scalar kernels, whose values the lane kernels reproduce bit-for-bit —
/// so the two modes examine the same boxes in the same order and return
/// identical outcomes, witnesses included.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the objective's variable count.
pub fn prove_bound(
    query: &BoundQuery<'_>,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    assert_eq!(
        domain.len(),
        query.objective.nvars(),
        "domain dimension must match the polynomial"
    );
    // Compiled forms come from the per-thread query cache: the objective as
    // a single-member family, and — after the root-domain hoisting below —
    // the *active* guards as one family, so every guard check fills its
    // power tables once for all guards and CEGIS re-proofs of the same
    // certificate family skip compilation entirely.  Guards and objective
    // stay separate on purpose: guard pruning excludes a box *before* the
    // (typically much denser) objective is evaluated on it, which measures
    // faster than sharing one table fill across objective and guards.
    // Work tally for the process-wide registry; flushed on drop, which
    // covers every return path below.  Cell bumps only — never on the
    // numeric path, so outcomes are bit-identical with the registry on.
    let tally = crate::obs::BbTally::start();
    let objective_set = with_query_cache(|cache| cache.get_or_compile(&[query.objective]));
    let objective = SingleMember(&objective_set);
    let mut scratch = PolyScratch::new();
    // Guard pre-check hoisting: a guard whose enclosure over the *root*
    // domain is already non-positive holds at every point of every sub-box —
    // it can never prune a box and always passes the counterexample check,
    // so it is dropped from the per-box checks entirely.
    let active_guard_polys: Vec<&Polynomial> = if query.guards.is_empty() {
        Vec::new()
    } else {
        let all_guards = with_query_cache(|cache| cache.get_or_compile(&query.guards));
        let mut guard_values = vec![Interval::zero(); all_guards.len()];
        all_guards.eval_interval_into_with(domain, &mut guard_values, &mut scratch);
        query
            .guards
            .iter()
            .zip(guard_values.iter())
            .filter(|(_, enclosure)| enclosure.hi() > 0.0)
            .map(|(&g, _)| g)
            .collect()
    };
    let guards = (!active_guard_polys.is_empty())
        .then(|| with_query_cache(|cache| cache.get_or_compile(&active_guard_polys)));
    let num_guards = active_guard_polys.len();
    // Reusable buffers: the candidate point and guard values of the
    // counterexample probes, the wave of popped boxes with their
    // evaluations, and the box batches of the lane sweeps.
    let mut point = vec![0.0; domain.len()];
    let mut guard_point_values = vec![0.0; num_guards];
    let mut guard_values = vec![Interval::zero(); num_guards];
    let mut batch = BatchBoxes::with_capacity(domain.len(), LANE_WIDTH);
    let mut live_batch = BatchBoxes::with_capacity(domain.len(), LANE_WIDTH);
    let mut batch_out: Vec<Interval> = Vec::new();
    let mut wave: Vec<Vec<Interval>> = Vec::with_capacity(LANE_WIDTH);
    let mut wave_evals: Vec<(Interval, bool)> = Vec::with_capacity(LANE_WIDTH);
    let mut live_lanes: Vec<usize> = Vec::with_capacity(LANE_WIDTH);
    let mut stack: Vec<Vec<Interval>> = vec![domain.to_vec()];
    let mut boxes_examined = 0usize;
    let mut worst_box: Option<(Vec<f64>, Vec<f64>, f64)> = None;
    let mut undecided_smallest = false;
    while !stack.is_empty() {
        // Pop the next wave off the frontier and evaluate it: guards over
        // the whole wave first, then the objective over the lanes no guard
        // pruned — lane-batched in family sweeps, or box-by-box through the
        // scalar kernels; the values (and hence everything below) are
        // bit-identical either way.
        //
        // Counterexample-first window: evaluating a wave is speculative — a
        // counterexample in its first box makes the rest wasted work, and
        // sibling sub-trees that a depth-first probe would never reach get
        // expanded.  So while the deterministic box counter is below
        // [`BranchBoundConfig::probe_boxes`] the wave is a single box,
        // which makes the traversal exactly the classic DFS probe order:
        // refuting queries surface their witness (midpoint/corner probes in
        // `find_counterexample`) having examined precisely the boxes the
        // seed DFS would have.  Past the window the search is almost
        // certainly proving — proofs must examine every box regardless of
        // order — and the frontier widens to full lanes.  The width is a
        // function of the box counter alone, so the scalar and batched
        // modes pop identical waves.
        wave.clear();
        tally.wave();
        let wave_width = if boxes_examined < config.probe_boxes {
            1
        } else {
            LANE_WIDTH
        };
        for _ in 0..wave_width.min(stack.len()) {
            wave.push(stack.pop().expect("bounded by stack length"));
        }
        wave_evals.clear();
        // Width-1 waves take the scalar kernels even in batched mode: the
        // lane kernels reproduce them bit-for-bit, and a one-lane batch
        // sweep costs more than a scalar evaluation, so inside the DFS
        // window both modes run the identical (cheapest) code path.
        if config.lane_batched && wave.len() > 1 {
            let lanes = wave.len();
            // Pruned lanes keep a placeholder enclosure that is never read.
            wave_evals.resize(lanes, (Interval::zero(), true));
            live_lanes.clear();
            if let Some(guards) = &guards {
                batch.clear();
                for current in &wave {
                    batch.push(current);
                }
                guards.evaluate_interval_batch_with(&batch, &mut batch_out, &mut scratch);
                for lane in 0..lanes {
                    let prunes = (0..num_guards).any(|gi| batch_out[gi * lanes + lane].lo() > 0.0);
                    if !prunes {
                        live_lanes.push(lane);
                    }
                }
            } else {
                live_lanes.extend(0..lanes);
            }
            live_batch.clear();
            for &lane in &live_lanes {
                live_batch.push(&wave[lane]);
            }
            objective
                .0
                .evaluate_interval_batch_with(&live_batch, &mut batch_out, &mut scratch);
            for (slot, &lane) in batch_out.iter().zip(live_lanes.iter()) {
                wave_evals[lane] = (*slot, false);
            }
        } else {
            for current in &wave {
                let prunes = match &guards {
                    Some(guards) => {
                        guards.eval_interval_into_with(current, &mut guard_values, &mut scratch);
                        guard_values.iter().any(|enclosure| enclosure.lo() > 0.0)
                    }
                    None => false,
                };
                if prunes {
                    wave_evals.push((Interval::zero(), true));
                } else {
                    wave_evals.push((objective.eval_interval_with(current, &mut scratch), false));
                }
            }
        }
        // Process the wave in pop order.
        for (current, &(enclosure, guard_prunes)) in wave.drain(..).zip(wave_evals.iter()) {
            boxes_examined += 1;
            tally.box_examined();
            if boxes_examined > config.max_boxes {
                return ProofOutcome::Unknown {
                    boxes_examined,
                    worst_box: worst_box.map(|(l, h, _)| (l, h)),
                };
            }
            // Guard pruning: if any active guard is certainly positive on
            // this box, no point of the box is relevant to the query.
            if guard_prunes {
                tally.guard_prune();
                continue;
            }
            if enclosure.hi() <= query.bound + config.tolerance {
                continue; // certified on this box
            }
            // Try to produce a genuine counterexample at the box midpoint
            // (and at the corners bounding the enclosure) before splitting.
            if let Some(cex) = find_counterexample(
                &objective,
                guards.as_deref(),
                &mut guard_point_values,
                query.bound,
                &current,
                &mut point,
                &mut scratch,
            ) {
                tally.found_counterexample();
                return cex;
            }
            let widest = current.iter().map(Interval::width).fold(0.0f64, f64::max);
            if widest <= config.min_width {
                // Cannot split further and cannot decide: record and
                // continue; the overall result will be Unknown (sound: we
                // never claim a proof).
                let margin = enclosure.hi() - query.bound;
                let lows: Vec<f64> = current.iter().map(Interval::lo).collect();
                let highs: Vec<f64> = current.iter().map(Interval::hi).collect();
                match &worst_box {
                    Some((_, _, m)) if *m >= margin => {}
                    _ => worst_box = Some((lows, highs, margin)),
                }
                undecided_smallest = true;
                continue;
            }
            // Split along the widest dimension.
            let split_dim = current
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.width()
                        .partial_cmp(&b.1.width())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let (left, right) = current[split_dim].bisect();
            let mut left_box = current.clone();
            left_box[split_dim] = left;
            let mut right_box = current;
            right_box[split_dim] = right;
            stack.push(left_box);
            stack.push(right_box);
        }
    }

    if undecided_smallest {
        ProofOutcome::Unknown {
            boxes_examined,
            worst_box: worst_box.map(|(l, h, _)| (l, h)),
        }
    } else {
        ProofOutcome::Proved { boxes_examined }
    }
}

/// Attempts to prove `p(x) ≤ 0` for all `x` in the box.
pub fn prove_nonpositive(
    p: &Polynomial,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    prove_bound(&BoundQuery::new(p, 0.0), domain, config)
}

/// Attempts to prove `p(x) > 0` (strictly) for all `x` in the box, by proving
/// `-p(x) ≤ -margin` for a tiny positive margin.
pub fn prove_positive(
    p: &Polynomial,
    domain: &[Interval],
    config: &BranchBoundConfig,
) -> ProofOutcome {
    let negated = -p;
    let outcome = prove_bound(&BoundQuery::new(&negated, 0.0), domain, config);
    match outcome {
        ProofOutcome::Counterexample { point, value } => ProofOutcome::Counterexample {
            point,
            value: -value,
        },
        other => other,
    }
}

/// Adapter giving a single-member compiled family the two evaluation calls
/// [`sound_minimum`] needs.  A one-polynomial [`CompiledPolySet`] lowers to
/// exactly the kernel of a standalone [`vrl_poly::CompiledPolynomial`], so
/// the values are bit-identical to compiling the polynomial alone.
struct SingleMember<'a>(&'a CompiledPolySet);

impl SingleMember<'_> {
    fn eval_interval_with(&self, domain: &[Interval], scratch: &mut PolyScratch) -> Interval {
        let mut out = [Interval::zero()];
        self.0.eval_interval_into_with(domain, &mut out, scratch);
        out[0]
    }

    fn eval_with(&self, point: &[f64], scratch: &mut PolyScratch) -> f64 {
        let mut out = [0.0];
        self.0.eval_into_with(point, &mut out, scratch);
        out[0]
    }
}

/// Computes a sound lower bound of `p` over the box by branch-and-bound
/// refinement: the returned value is `≤ min_{x ∈ domain} p(x)`, and
/// converges towards it as `max_boxes` grows.
///
/// Runs the lane-batched refinement of [`sound_minimum_with`].
///
/// # Panics
///
/// Panics if `domain.len()` differs from the polynomial's variable count.
pub fn sound_minimum(p: &Polynomial, domain: &[Interval], max_boxes: usize) -> f64 {
    sound_minimum_with(p, domain, max_boxes, true)
}

/// [`sound_minimum`] with an explicit kernel mode.
///
/// The best-first queue is refined in *waves*, mirroring [`prove_bound`]'s
/// frontier: each sweep pops up to [`LANE_WIDTH`] boxes in best-first order
/// (ramping up from one box so short refinements keep the classic pop
/// order), splits every popped box along its widest dimension, and
/// evaluates all children — interval lower bounds and midpoint upper
/// bounds — in two family sweeps instead of one kernel call per child.
/// The same order-stability argument as `prove_bound` applies: the wave
/// schedule depends only on the sweep count and the deterministic
/// best-first pop order, and each lane of a batched sweep is bit-identical
/// to the scalar kernel, so `lane_batched = false` (the differential
/// reference arm, one scalar kernel call per child in the identical order)
/// returns a bit-identical bound.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the polynomial's variable count.
pub fn sound_minimum_with(
    p: &Polynomial,
    domain: &[Interval],
    max_boxes: usize,
    lane_batched: bool,
) -> f64 {
    assert_eq!(
        domain.len(),
        p.nvars(),
        "domain dimension must match the polynomial"
    );
    // The compiled form comes from the query cache (a single-member
    // family), so repeated refinements of the same polynomial — e.g. the
    // per-obstacle level checks of the linear back-end across CEGIS rounds —
    // skip compilation; the cached kernel is exactly what a fresh
    // compilation would produce, so the bound is unchanged.
    let family = with_query_cache(|cache| cache.get_or_compile(&[p]));
    let compiled = SingleMember(&family);
    let mut scratch = PolyScratch::new();
    // One reusable midpoint buffer instead of a fresh `collect()` per child.
    let mut midpoint = vec![0.0; domain.len()];
    for (m, iv) in midpoint.iter_mut().zip(domain.iter()) {
        *m = iv.midpoint();
    }
    // Best-first search on the interval lower bound.
    let mut queue: Vec<(f64, Vec<Interval>)> = vec![(
        compiled.eval_interval_with(domain, &mut scratch).lo(),
        domain.to_vec(),
    )];
    let mut upper = compiled.eval_with(&midpoint, &mut scratch);
    let mut examined = 0usize;
    let mut wave: Vec<(f64, Vec<Interval>)> = Vec::with_capacity(LANE_WIDTH);
    let mut children: Vec<Vec<Interval>> = Vec::with_capacity(2 * LANE_WIDTH);
    let mut child_boxes = BatchBoxes::with_capacity(domain.len(), 2 * LANE_WIDTH);
    let mut child_points = BatchPoints::with_capacity(domain.len(), 2 * LANE_WIDTH);
    let mut lows_out: Vec<Interval> = Vec::new();
    let mut mids_out: Vec<f64> = Vec::new();
    // Wave ramp-up, exactly as in `prove_bound`: one box on the first
    // sweep, doubling to LANE_WIDTH, so cheap refinements never speculate.
    let mut wave_width = 1usize;
    while examined < max_boxes && !queue.is_empty() {
        // Pop this wave best-first — repeated min-scans with the same
        // first-minimal tie-break the one-box loop used.
        wave.clear();
        let take = wave_width.min(queue.len()).min(max_boxes - examined);
        wave_width = (wave_width * 2).min(LANE_WIDTH);
        for _ in 0..take {
            let index = queue
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1 .0
                        .partial_cmp(&b.1 .0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("bounded by queue length");
            wave.push(queue.swap_remove(index));
        }
        // Termination scan in pop order, against the `upper` every box in
        // the wave was popped under.  Pops past the first terminating box
        // go back to the queue untouched (and uncounted).
        let mut split_count = wave.len();
        let mut finished = false;
        for (i, (lower, current)) in wave.iter().enumerate() {
            examined += 1;
            let converged = upper - lower < 1e-9 * (1.0 + upper.abs());
            let widest = current.iter().map(Interval::width).fold(0.0f64, f64::max);
            if converged || widest < 1e-6 {
                split_count = i;
                finished = true;
                break;
            }
        }
        for (lower, unprocessed) in wave.drain(split_count..) {
            queue.push((lower, unprocessed));
        }
        // Split every remaining pop along its widest dimension; the wave's
        // children are then evaluated together — one interval sweep for the
        // lower bounds, one point sweep for the midpoint upper bounds — and
        // pushed in (pop, left, right) order, matching the reference arm.
        children.clear();
        for (_, current) in wave.drain(..) {
            let split_dim = current
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.width()
                        .partial_cmp(&b.1.width())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let (left, right) = current[split_dim].bisect();
            let mut left_box = current.clone();
            left_box[split_dim] = left;
            let mut right_box = current;
            right_box[split_dim] = right;
            children.push(left_box);
            children.push(right_box);
        }
        if lane_batched {
            child_boxes.clear();
            child_points.clear();
            for child in &children {
                child_boxes.push(child);
                for (m, iv) in midpoint.iter_mut().zip(child.iter()) {
                    *m = iv.midpoint();
                }
                child_points.push(&midpoint);
            }
            compiled
                .0
                .evaluate_interval_batch_with(&child_boxes, &mut lows_out, &mut scratch);
            compiled
                .0
                .evaluate_batch_with(&child_points, &mut mids_out, &mut scratch);
            for (child, (enclosure, mid_value)) in
                children.drain(..).zip(lows_out.iter().zip(mids_out.iter()))
            {
                upper = upper.min(*mid_value);
                queue.push((enclosure.lo(), child));
            }
        } else {
            for child in children.drain(..) {
                let child_lower = compiled.eval_interval_with(&child, &mut scratch).lo();
                for (m, iv) in midpoint.iter_mut().zip(child.iter()) {
                    *m = iv.midpoint();
                }
                upper = upper.min(compiled.eval_with(&midpoint, &mut scratch));
                queue.push((child_lower, child));
            }
        }
        if finished {
            break;
        }
    }
    crate::obs::min_boxes().add(examined as u64);
    queue
        .iter()
        .map(|(lo, _)| *lo)
        .fold(f64::INFINITY, f64::min)
        .min(upper)
}

/// Probes the box midpoint and both extreme corners for a genuine
/// counterexample, reusing `point` and `guard_values` as candidate buffers
/// so subdivision allocates nothing until a witness is actually found.  The
/// active-guard family is evaluated per probe (one power-table fill for all
/// guards); the objective is evaluated only when every guard admits the
/// point, exactly as the per-box pruning order does.
fn find_counterexample(
    objective: &SingleMember<'_>,
    guards: Option<&CompiledPolySet>,
    guard_values: &mut [f64],
    bound: f64,
    domain: &[Interval],
    point: &mut [f64],
    scratch: &mut PolyScratch,
) -> Option<ProofOutcome> {
    for pick in [Interval::midpoint, Interval::lo, Interval::hi] {
        for (slot, iv) in point.iter_mut().zip(domain.iter()) {
            *slot = pick(iv);
        }
        if let Some(guards) = guards {
            guards.eval_into_with(point, guard_values, scratch);
            // `all(v <= 0.0)` (not `!any(v > 0.0)`): a guard evaluating to
            // NaN at the probe must reject the candidate — the point does
            // not verifiably satisfy the guards.
            if !guard_values.iter().all(|&v| v <= 0.0) {
                continue;
            }
        }
        let value = objective.eval_with(point, scratch);
        if value > bound {
            return Some(ProofOutcome::Counterexample {
                point: point.to_vec(),
                value,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vrl_poly::monomial_basis;

    fn interval_box(bounds: &[(f64, f64)]) -> Vec<Interval> {
        bounds.iter().map(|&(l, h)| Interval::new(l, h)).collect()
    }

    #[test]
    fn proves_simple_nonpositivity() {
        // p = x² - 1 ≤ 0 on [-1, 1]
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
        let outcome = prove_nonpositive(
            &p,
            &interval_box(&[(-1.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn finds_counterexamples() {
        // p = x² - 1 > 0 at x = 2
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
        let outcome = prove_nonpositive(
            &p,
            &interval_box(&[(-2.0, 2.0)]),
            &BranchBoundConfig::default(),
        );
        let point = outcome
            .counterexample()
            .expect("must find a counterexample");
        assert!(p.eval(point) > 0.0);
        assert!(!outcome.is_proved());
    }

    #[test]
    fn proves_strict_positivity() {
        // p = x² + 0.1 > 0 everywhere
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) + &Polynomial::constant(0.1, 1);
        let outcome = prove_positive(
            &p,
            &interval_box(&[(-3.0, 3.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved());
        // p = x² - 0.5 is not positive near zero.
        let q = &(&x * &x) - &Polynomial::constant(0.5, 1);
        let refuted = prove_positive(
            &q,
            &interval_box(&[(-3.0, 3.0)]),
            &BranchBoundConfig::default(),
        );
        let cex = refuted
            .counterexample()
            .expect("not positive near the origin");
        assert!(q.eval(cex) <= 0.0);
    }

    #[test]
    fn guards_restrict_the_query() {
        // Objective x ≤ 0.5 fails on [0, 1] in general, but holds on the
        // guarded region where g(x) = x - 0.25 ≤ 0.
        let x = Polynomial::variable(0, 1);
        let bound_query = BoundQuery::new(&x, 0.5);
        let failing = prove_bound(
            &bound_query,
            &interval_box(&[(0.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(failing.counterexample().is_some());
        let guard = &x - &Polynomial::constant(0.25, 1);
        let guarded_query = BoundQuery::new(&x, 0.5).with_guard(&guard);
        let outcome = prove_bound(
            &guarded_query,
            &interval_box(&[(0.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn two_dimensional_barrier_style_query() {
        // E = x² + y² - 1; prove E ≤ 0 implies (0.9·x)² + (0.9·y)² - 1 ≤ 0
        // (a contraction keeps the sublevel set invariant).
        let nvars = 2;
        let x = Polynomial::variable(0, nvars);
        let y = Polynomial::variable(1, nvars);
        let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, nvars);
        let contracted = &(&(&x * &x).scaled(0.81) + &(&y * &y).scaled(0.81))
            - &Polynomial::constant(1.0, nvars);
        let query = BoundQuery::new(&contracted, 0.0).with_guard(&e);
        let outcome = prove_bound(
            &query,
            &interval_box(&[(-2.0, 2.0), (-2.0, 2.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.is_proved(), "got {outcome:?}");
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A polynomial that is extremely close to the bound everywhere forces
        // deep subdivision; with a tiny budget the answer must be Unknown,
        // never a wrong Proved.
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x).scaled(1e-12) - &Polynomial::constant(0.0, 1);
        let config = BranchBoundConfig {
            max_boxes: 3,
            min_width: 1e-9,
            tolerance: 0.0,
            ..BranchBoundConfig::default()
        };
        let outcome = prove_bound(
            &BoundQuery::new(&p, -1e-30),
            &interval_box(&[(-1.0, 1.0)]),
            &config,
        );
        assert!(matches!(
            outcome,
            ProofOutcome::Unknown { .. } | ProofOutcome::Counterexample { .. }
        ));
        assert!(!outcome.is_proved());
    }

    #[test]
    fn min_width_floor_reports_unknown_not_proved() {
        // p = x² is ≤ 0 only at a single point; asking for p ≤ -1e-9 cannot be
        // proved, and near x = 0 no counterexample with p > -1e-9... actually
        // p(0) = 0 > -1e-9 so a counterexample is found immediately.
        let x = Polynomial::variable(0, 1);
        let p = &x * &x;
        let outcome = prove_bound(
            &BoundQuery::new(&p, -1e-9),
            &interval_box(&[(-1.0, 1.0)]),
            &BranchBoundConfig::default(),
        );
        assert!(outcome.counterexample().is_some());
    }

    #[test]
    fn scalar_and_batched_modes_agree_exactly_on_fixed_queries() {
        // Guarded and unguarded, provable and refutable queries: the
        // lane-batched frontier must reproduce the scalar outcome exactly,
        // including witness points and box counts.
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let e = &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(1.0, 2);
        let contracted =
            &(&(&x * &x).scaled(0.81) + &(&y * &y).scaled(0.81)) - &Polynomial::constant(1.0, 2);
        let expanded =
            &(&(&x * &x).scaled(1.2) + &(&y * &y).scaled(1.2)) - &Polynomial::constant(1.0, 2);
        let domain = interval_box(&[(-2.0, 2.0), (-2.0, 2.0)]);
        for (objective, guards) in [
            (&contracted, vec![&e]),
            (&expanded, vec![&e]),
            (&contracted, vec![]),
            (&expanded, vec![]),
        ] {
            let mut query = BoundQuery::new(objective, 0.0);
            for guard in guards {
                query = query.with_guard(guard);
            }
            let scalar = prove_bound(
                &query,
                &domain,
                &BranchBoundConfig {
                    lane_batched: false,
                    ..BranchBoundConfig::default()
                },
            );
            let batched = prove_bound(&query, &domain, &BranchBoundConfig::default());
            assert_eq!(scalar, batched);
        }
    }

    #[test]
    fn repeated_queries_hit_the_compiled_query_cache() {
        crate::reset_query_cache();
        let x = Polynomial::variable(0, 1);
        let p = &(&x * &x) - &Polynomial::constant(1.0, 1);
        let domain = interval_box(&[(-1.0, 1.0)]);
        let first = prove_nonpositive(&p, &domain, &BranchBoundConfig::default());
        let after_first = crate::query_cache_stats();
        assert_eq!(after_first.misses, 1);
        assert_eq!(after_first.hits, 0);
        // The identical query re-proves without recompiling and with the
        // identical outcome.
        let second = prove_nonpositive(&p, &domain, &BranchBoundConfig::default());
        let after_second = crate::query_cache_stats();
        assert_eq!(after_second.misses, 1);
        assert_eq!(after_second.hits, 1);
        assert_eq!(first, second);
        // `sound_minimum` shares the same cache — and because an unguarded
        // query's family is just `[p]`, it reuses the very entry the proofs
        // above compiled.
        let min1 = sound_minimum(&p, &domain, 1000);
        let min2 = sound_minimum(&p, &domain, 1000);
        assert_eq!(min1.to_bits(), min2.to_bits());
        let final_stats = crate::query_cache_stats();
        assert_eq!(final_stats.misses, 1);
        assert_eq!(final_stats.hits, 3);
        crate::reset_query_cache();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The lane-batched frontier returns exactly the scalar outcome on
        /// random quadratic queries: same verdict, same witness, same box
        /// count — speculation over the stack never changes the search.
        #[test]
        fn prop_batched_equals_scalar(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
            gcoeffs in proptest::collection::vec(-2.0..2.0f64, 6),
            bound in -1.0..1.0f64,
        ) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let g = Polynomial::from_basis(2, &basis, &gcoeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let query = BoundQuery::new(&p, bound).with_guard(&g);
            // Keep the budget modest so refuted/unknown cases stay cheap.
            let scalar_config = BranchBoundConfig {
                max_boxes: 20_000,
                lane_batched: false,
                ..BranchBoundConfig::default()
            };
            let batched_config = BranchBoundConfig {
                max_boxes: 20_000,
                ..BranchBoundConfig::default()
            };
            let scalar = prove_bound(&query, &domain, &scalar_config);
            let batched = prove_bound(&query, &domain, &batched_config);
            prop_assert_eq!(scalar, batched);
        }

        #[test]
        fn prop_proved_queries_hold_on_samples(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
            shift in 0.5..3.0f64,
            tx in 0.0..1.0f64, ty in 0.0..1.0f64,
        ) {
            // p - (max over a sample grid + shift) must be provably ≤ 0 … and
            // if the prover says so, random samples must satisfy it.
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let enclosure = p.eval_interval(&domain);
            let bound = enclosure.hi() + shift;
            let outcome = prove_bound(&BoundQuery::new(&p, bound), &domain, &BranchBoundConfig::default());
            prop_assert!(outcome.is_proved());
            let sample = [-1.0 + 2.0 * tx, -1.0 + 2.0 * ty];
            prop_assert!(p.eval(&sample) <= bound + 1e-9);
        }

        /// The wave-batched `sound_minimum` returns a bit-identical bound
        /// to the scalar reference arm, and the bound is genuinely sound
        /// against point samples.
        #[test]
        fn prop_sound_minimum_batched_equals_scalar(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
            tx in 0.0..1.0f64, ty in 0.0..1.0f64,
        ) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let batched = sound_minimum_with(&p, &domain, 5_000, true);
            let scalar = sound_minimum_with(&p, &domain, 5_000, false);
            prop_assert_eq!(batched.to_bits(), scalar.to_bits());
            let sample = [-1.0 + 2.0 * tx, -1.0 + 2.0 * ty];
            prop_assert!(batched <= p.eval(&sample) + 1e-9);
        }

        #[test]
        fn prop_counterexamples_are_genuine(
            coeffs in proptest::collection::vec(-2.0..2.0f64, 6),
        ) {
            let basis = monomial_basis(2, 2);
            let p = Polynomial::from_basis(2, &basis, &coeffs);
            let domain = interval_box(&[(-1.0, 1.0), (-1.0, 1.0)]);
            let outcome = prove_bound(&BoundQuery::new(&p, p.eval(&[0.0, 0.0]) - 0.5), &domain, &BranchBoundConfig::default());
            if let Some(point) = outcome.counterexample() {
                prop_assert!(p.eval(point) > p.eval(&[0.0, 0.0]) - 0.5);
            }
        }
    }
}
