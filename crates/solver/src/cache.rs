//! Cross-query cache of compiled `objective + guards` families.
//!
//! Every branch-and-bound query compiles its objective and guard
//! polynomials into one flat [`CompiledPolySet`] so each box (or lane of
//! boxes) fills the per-variable power tables once for the whole family.
//! CEGIS loops re-prove the *same* certificate families over and over —
//! every separation region re-checks the same negated barrier, and every
//! re-proof round replays queries an earlier round already compiled — so
//! recompiling per query is pure waste.  [`CompiledQueryCache`] memoizes
//! compiled families across queries, keyed by the exact term content of
//! the polynomials.
//!
//! # Cache-key semantics
//!
//! The key is the full structural identity of the query family: the number
//! of polynomials, and for each polynomial its variable count plus every
//! `(exponents, coefficient-bits)` term in canonical order.  Two queries
//! share an entry **iff** their objective and guards are term-for-term
//! identical (coefficients compared bitwise), so a cache hit can never
//! change a proof outcome — the compiled form retrieved is exactly the
//! compiled form a fresh compilation would produce.  Guard *order* is part
//! of the key (families are compiled in query order).
//!
//! # Eviction
//!
//! The cache is bounded: when full, the least-recently-used entry is
//! evicted.  Entries hand out [`Arc`] clones, so an in-flight proof keeps
//! its compiled family alive even if the entry is evicted mid-query.
//!
//! # Scope: two levels
//!
//! The cache is two-level.  **L1** is one instance per thread (see
//! [`with_query_cache`]): the solver entry points ([`crate::prove_bound`],
//! [`crate::sound_minimum`], and everything above them — the barrier,
//! linear, and engine verification layers) all route through the
//! thread-local instance, so the proof hot path takes no lock and a CEGIS
//! loop running on one thread reuses its own compilations for free.  **L2**
//! is a process-wide sharded store consulted only on an L1 miss: workloads
//! that fan the *same* families across worker threads — the decision-table
//! build and the serving fleet's per-shard redeploys — compile each family
//! once per process instead of once per thread.  The family key is purely
//! structural, so an L2 hit hands back exactly the compiled form a fresh
//! compilation would produce; sharing across threads can never change an
//! outcome.  L1 hit/miss/eviction counters keep their per-thread semantics
//! (an L2 hit still counts as an L1 miss); [`shared_query_cache_stats`]
//! exposes the process-wide counters separately.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};
use vrl_poly::{CompiledPolySet, Polynomial};

/// Default capacity (in compiled families) of the per-thread query cache:
/// generously above the distinct queries of a verification run (a few per
/// candidate round) while keeping worst-case memory bounded.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 128;

/// Number of independently locked shards of the process-wide (L2) store:
/// enough that a worker pool's table-build fan-out rarely contends on one
/// mutex, small enough that the shard array costs nothing.
const SHARED_CACHE_SHARDS: usize = 8;

/// Capacity (in compiled families) of each L2 shard, so the process-wide
/// store holds at most `SHARED_CACHE_SHARDS * SHARED_SHARD_CAPACITY`
/// families before evicting least-recently-used entries.
const SHARED_SHARD_CAPACITY: usize = 64;

/// Aggregate counters of a [`CompiledQueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Families currently resident.
    pub entries: usize,
    /// Maximum resident families.
    pub capacity: usize,
}

impl QueryCacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    set: Arc<CompiledPolySet>,
    last_used: u64,
}

/// Aggregate counters of the process-wide (L2) store, summed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedQueryCacheStats {
    /// L1 misses answered by the shared store without recompiling.
    pub hits: u64,
    /// L1 misses that compiled a family new to the whole process.
    pub misses: u64,
    /// Families evicted to respect the per-shard capacity bound.
    pub evictions: u64,
    /// Families currently resident across all shards.
    pub entries: usize,
    /// Shard-lock acquisitions that found the lock already held (the
    /// `try_lock` probe failed and the caller had to block).
    pub contended_acquires: u64,
    /// Nanoseconds spent blocked on shard locks by contended acquisitions
    /// (uncontended acquisitions contribute zero).
    pub lock_wait_ns: u64,
}

impl SharedQueryCacheStats {
    /// Fraction of L2 lookups answered without recompiling (0 when none
    /// were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of shard-lock acquisitions that had to block (0 when no
    /// lookups were made).
    pub fn contention_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.contended_acquires as f64 / total as f64
        }
    }
}

/// Process-wide contention tally for the L2 shard locks.  Kept outside the
/// shards themselves: recording a contended acquisition must not require
/// the very lock that was contended.
static SHARED_CONTENDED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Nanoseconds spent blocked on contended L2 shard-lock acquisitions.
static SHARED_LOCK_WAIT_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[derive(Default)]
struct SharedShard {
    entries: HashMap<Vec<u64>, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The process-wide store: families a thread compiles become visible to
/// every other thread's L1 misses.  Compilation happens inside the shard
/// lock, so two threads racing on the same new family serialize and the
/// loser gets a hit instead of a duplicate compile; distinct shards never
/// contend.
static SHARED_CACHE: LazyLock<Vec<Mutex<SharedShard>>> = LazyLock::new(|| {
    (0..SHARED_CACHE_SHARDS)
        .map(|_| Mutex::new(SharedShard::default()))
        .collect()
});

/// FNV-1a over the key words picks the shard; the key is already a
/// canonical structural encoding, so identical families always land on the
/// same shard.
fn shard_for(key: &[u64]) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in key {
        hash ^= *word;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % SHARED_CACHE_SHARDS as u64) as usize
}

/// L2 lookup-or-compile for `key`/`polys` (the key must be
/// `family_key(polys)`).
fn shared_get_or_compile(key: &[u64], polys: &[&Polynomial]) -> Arc<CompiledPolySet> {
    use std::sync::atomic::Ordering;
    let mutex = &SHARED_CACHE[shard_for(key)];
    // Probe with try_lock first so contention is observable: a failed probe
    // means another thread holds this shard right now, and the blocking
    // acquisition that follows is timed.
    let mut guard = match mutex.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::WouldBlock) => {
            SHARED_CONTENDED.fetch_add(1, Ordering::Relaxed);
            crate::obs::shared_cache_contended().inc();
            let waited = std::time::Instant::now();
            let guard = mutex.lock().expect("shared query cache shard poisoned");
            SHARED_LOCK_WAIT_NS.fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
            guard
        }
        Err(std::sync::TryLockError::Poisoned(_)) => {
            panic!("shared query cache shard poisoned")
        }
    };
    // Reborrow through the guard once so the borrow checker sees disjoint
    // field borrows below.
    let shard = &mut *guard;
    shard.tick += 1;
    let tick = shard.tick;
    if let Some(entry) = shard.entries.get_mut(key) {
        entry.last_used = tick;
        shard.hits += 1;
        crate::obs::shared_cache_hits().inc();
        return Arc::clone(&entry.set);
    }
    shard.misses += 1;
    crate::obs::shared_cache_misses().inc();
    if shard.entries.len() >= SHARED_SHARD_CAPACITY {
        if let Some(oldest) = shard
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            shard.entries.remove(&oldest);
            shard.evictions += 1;
        }
    }
    let set = Arc::new(CompiledPolySet::compile_refs(polys));
    shard.entries.insert(
        key.to_vec(),
        Entry {
            set: Arc::clone(&set),
            last_used: tick,
        },
    );
    set
}

/// Process-wide counters of the shared (L2) store, summed over its shards.
pub fn shared_query_cache_stats() -> SharedQueryCacheStats {
    let mut stats = SharedQueryCacheStats::default();
    for shard in SHARED_CACHE.iter() {
        let shard = shard.lock().expect("shared query cache shard poisoned");
        stats.hits += shard.hits;
        stats.misses += shard.misses;
        stats.evictions += shard.evictions;
        stats.entries += shard.entries.len();
    }
    stats.contended_acquires = SHARED_CONTENDED.load(std::sync::atomic::Ordering::Relaxed);
    stats.lock_wait_ns = SHARED_LOCK_WAIT_NS.load(std::sync::atomic::Ordering::Relaxed);
    stats
}

/// Drops every family resident in the shared (L2) store and resets its
/// counters.  Affects the whole process; see [`reset_query_cache`].
pub fn reset_shared_query_cache() {
    for shard in SHARED_CACHE.iter() {
        let mut shard = shard.lock().expect("shared query cache shard poisoned");
        *shard = SharedShard::default();
    }
    SHARED_CONTENDED.store(0, std::sync::atomic::Ordering::Relaxed);
    SHARED_LOCK_WAIT_NS.store(0, std::sync::atomic::Ordering::Relaxed);
}

/// A bounded, LRU-evicting cache of compiled query families.
///
/// See the module documentation for the key semantics; see
/// [`with_query_cache`] for the thread-local instance the solver entry
/// points use.
///
/// # Examples
///
/// ```
/// use vrl_poly::Polynomial;
/// use vrl_solver::CompiledQueryCache;
///
/// let x = Polynomial::variable(0, 1);
/// let mut cache = CompiledQueryCache::new(8);
/// let first = cache.get_or_compile(&[&x]);
/// let second = cache.get_or_compile(&[&x]);
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct CompiledQueryCache {
    capacity: usize,
    entries: HashMap<Vec<u64>, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Encodes the structural identity of a query family (see the module
/// documentation): polynomial count, then per polynomial its variable
/// count, term count, and every `(exponents, coefficient-bits)` term in
/// canonical order.  Exponent runs have fixed length `nvars`, so the
/// encoding is unambiguous and the key is injective.
fn family_key(polys: &[&Polynomial]) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + polys.len() * 8);
    key.push(polys.len() as u64);
    for poly in polys {
        key.push(poly.nvars() as u64);
        key.push(poly.num_terms() as u64);
        for (exps, coeff) in poly.terms() {
            key.extend(exps.iter().map(|&e| e as u64));
            key.push(coeff.to_bits());
        }
    }
    key
}

impl CompiledQueryCache {
    /// Creates an empty cache bounded to `capacity` resident families.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the query cache needs a positive capacity");
        CompiledQueryCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the compiled form of the family `polys`, consulting the
    /// process-wide (L2) store — and compiling, visibly to every thread —
    /// on first sight.  Evicts the least-recently-used entry when the
    /// capacity bound would be exceeded.  The hit/miss counters keep their
    /// per-instance semantics: an L2 hit still counts as a miss here.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or its members disagree on the variable
    /// count (the [`CompiledPolySet`] preconditions).
    pub fn get_or_compile(&mut self, polys: &[&Polynomial]) -> Arc<CompiledPolySet> {
        self.tick += 1;
        let key = family_key(polys);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.hits += 1;
            crate::obs::cache_hits().inc();
            return Arc::clone(&entry.set);
        }
        self.misses += 1;
        crate::obs::cache_misses().inc();
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
                crate::obs::cache_evictions().inc();
            }
        }
        let set = shared_get_or_compile(&key, polys);
        self.entries.insert(
            key,
            Entry {
                set: Arc::clone(&set),
                last_used: self.tick,
            },
        );
        set
    }

    /// Current counters.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when no family is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every resident family and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

thread_local! {
    /// The per-thread cache instance backing the solver entry points.
    static QUERY_CACHE: RefCell<CompiledQueryCache> =
        RefCell::new(CompiledQueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY));
}

/// Runs `f` with exclusive access to this thread's [`CompiledQueryCache`].
///
/// This is the instance [`crate::prove_bound`] and
/// [`crate::sound_minimum`] pull compiled families from; tests and benches
/// use it to inspect or reset the counters around a workload.
pub fn with_query_cache<R>(f: impl FnOnce(&mut CompiledQueryCache) -> R) -> R {
    QUERY_CACHE.with(|cell| f(&mut cell.borrow_mut()))
}

/// Counters of this thread's query cache (see [`with_query_cache`]).
pub fn query_cache_stats() -> QueryCacheStats {
    with_query_cache(|cache| cache.stats())
}

/// Clears this thread's (L1) query cache and resets its counters, then
/// clears the process-wide (L2) store too, so a workload measured after a
/// reset starts from a genuinely cold cache.  Other threads' L1 instances
/// are untouched (their resident `Arc`s stay valid regardless).
pub fn reset_query_cache() {
    with_query_cache(CompiledQueryCache::clear);
    reset_shared_query_cache();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeff: f64) -> Polynomial {
        let x = Polynomial::variable(0, 1);
        &(&x * &x) + &Polynomial::constant(coeff, 1)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = CompiledQueryCache::new(8);
        let a = poly(1.0);
        let b = poly(2.0);
        let guard = Polynomial::variable(0, 1);
        assert!(cache.is_empty());
        let first = cache.get_or_compile(&[&a, &guard]);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        // Same family: a hit handing back the same compiled set.
        let again = cache.get_or_compile(&[&a, &guard]);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.stats().hits, 1);
        // Different objective, different guard order, sub-family: all misses.
        let _ = cache.get_or_compile(&[&b, &guard]);
        let _ = cache.get_or_compile(&[&guard, &a]);
        let _ = cache.get_or_compile(&[&a]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
        // Coefficients are compared bitwise: a freshly built but identical
        // polynomial still hits.
        let rebuilt = poly(1.0);
        let hit = cache.get_or_compile(&[&rebuilt, &guard]);
        assert!(Arc::ptr_eq(&first, &hit));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn eviction_respects_the_capacity_bound_and_lru_order() {
        let mut cache = CompiledQueryCache::new(2);
        let a = poly(1.0);
        let b = poly(2.0);
        let c = poly(3.0);
        let _ = cache.get_or_compile(&[&a]);
        let _ = cache.get_or_compile(&[&b]);
        // Touch `a` so `b` is the least recently used…
        let _ = cache.get_or_compile(&[&a]);
        // …and inserting `c` evicts `b`, not `a`.
        let _ = cache.get_or_compile(&[&c]);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        let _ = cache.get_or_compile(&[&a]);
        assert_eq!(cache.stats().hits, 2, "a must have survived eviction");
        let _ = cache.get_or_compile(&[&b]);
        assert_eq!(cache.stats().misses, 4, "b must have been evicted");
        // The cache never exceeds its capacity.
        assert!(cache.len() <= 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache = CompiledQueryCache::new(4);
        let a = poly(1.0);
        let _ = cache.get_or_compile(&[&a]);
        let _ = cache.get_or_compile(&[&a]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), QueryCacheStats::default().with_capacity(4));
    }

    impl QueryCacheStats {
        fn with_capacity(mut self, capacity: usize) -> Self {
            self.capacity = capacity;
            self
        }
    }

    #[test]
    fn thread_local_instance_is_shared_within_a_thread() {
        reset_query_cache();
        let a = poly(5.0);
        let first = with_query_cache(|cache| cache.get_or_compile(&[&a]));
        let second = with_query_cache(|cache| cache.get_or_compile(&[&a]));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = query_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        reset_query_cache();
        assert_eq!(query_cache_stats().entries, 0);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = CompiledQueryCache::new(0);
    }

    #[test]
    fn l1_misses_are_answered_by_the_process_wide_store() {
        // A family compiled through one cache instance must reach a second
        // instance — on another thread — through the shared L2 store, as
        // the identical `Arc`.  Tests elsewhere in the binary may reset the
        // shared store concurrently, so try a few unique families; sharing
        // must be observed on at least one attempt.
        let shared = (0..3).any(|attempt| {
            let p = poly(123.456 + attempt as f64);
            let here = CompiledQueryCache::new(4).get_or_compile(&[&p]);
            let there = std::thread::spawn({
                let p = p.clone();
                move || CompiledQueryCache::new(4).get_or_compile(&[&p])
            })
            .join()
            .expect("worker thread panicked");
            Arc::ptr_eq(&here, &there)
        });
        assert!(
            shared,
            "compiled families must be shared across threads through L2"
        );
        let stats = shared_query_cache_stats();
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        let a = poly(1.0);
        let key = family_key(&[&a]);
        assert_eq!(shard_for(&key), shard_for(&key));
        assert!(shard_for(&key) < SHARED_CACHE_SHARDS);
    }
}
