//! Cross-query cache of compiled `objective + guards` families.
//!
//! Every branch-and-bound query compiles its objective and guard
//! polynomials into one flat [`CompiledPolySet`] so each box (or lane of
//! boxes) fills the per-variable power tables once for the whole family.
//! CEGIS loops re-prove the *same* certificate families over and over —
//! every separation region re-checks the same negated barrier, and every
//! re-proof round replays queries an earlier round already compiled — so
//! recompiling per query is pure waste.  [`CompiledQueryCache`] memoizes
//! compiled families across queries, keyed by the exact term content of
//! the polynomials.
//!
//! # Cache-key semantics
//!
//! The key is the full structural identity of the query family: the number
//! of polynomials, and for each polynomial its variable count plus every
//! `(exponents, coefficient-bits)` term in canonical order.  Two queries
//! share an entry **iff** their objective and guards are term-for-term
//! identical (coefficients compared bitwise), so a cache hit can never
//! change a proof outcome — the compiled form retrieved is exactly the
//! compiled form a fresh compilation would produce.  Guard *order* is part
//! of the key (families are compiled in query order).
//!
//! # Eviction
//!
//! The cache is bounded: when full, the least-recently-used entry is
//! evicted.  Entries hand out [`Arc`] clones, so an in-flight proof keeps
//! its compiled family alive even if the entry is evicted mid-query.
//!
//! # Scope
//!
//! One cache per thread (see [`with_query_cache`]): the solver entry points
//! ([`crate::prove_bound`], [`crate::sound_minimum`], and everything above
//! them — the barrier, linear, and engine verification layers) all route
//! through the thread-local instance, so a CEGIS loop running on one
//! thread automatically reuses its own compilations without any locking on
//! the proof hot path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use vrl_poly::{CompiledPolySet, Polynomial};

/// Default capacity (in compiled families) of the per-thread query cache:
/// generously above the distinct queries of a verification run (a few per
/// candidate round) while keeping worst-case memory bounded.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 128;

/// Aggregate counters of a [`CompiledQueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Families currently resident.
    pub entries: usize,
    /// Maximum resident families.
    pub capacity: usize,
}

impl QueryCacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    set: Arc<CompiledPolySet>,
    last_used: u64,
}

/// A bounded, LRU-evicting cache of compiled query families.
///
/// See the module documentation for the key semantics; see
/// [`with_query_cache`] for the thread-local instance the solver entry
/// points use.
///
/// # Examples
///
/// ```
/// use vrl_poly::Polynomial;
/// use vrl_solver::CompiledQueryCache;
///
/// let x = Polynomial::variable(0, 1);
/// let mut cache = CompiledQueryCache::new(8);
/// let first = cache.get_or_compile(&[&x]);
/// let second = cache.get_or_compile(&[&x]);
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct CompiledQueryCache {
    capacity: usize,
    entries: HashMap<Vec<u64>, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Encodes the structural identity of a query family (see the module
/// documentation): polynomial count, then per polynomial its variable
/// count, term count, and every `(exponents, coefficient-bits)` term in
/// canonical order.  Exponent runs have fixed length `nvars`, so the
/// encoding is unambiguous and the key is injective.
fn family_key(polys: &[&Polynomial]) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + polys.len() * 8);
    key.push(polys.len() as u64);
    for poly in polys {
        key.push(poly.nvars() as u64);
        key.push(poly.num_terms() as u64);
        for (exps, coeff) in poly.terms() {
            key.extend(exps.iter().map(|&e| e as u64));
            key.push(coeff.to_bits());
        }
    }
    key
}

impl CompiledQueryCache {
    /// Creates an empty cache bounded to `capacity` resident families.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the query cache needs a positive capacity");
        CompiledQueryCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the compiled form of the family `polys`, compiling (and
    /// caching) it on first sight.  Evicts the least-recently-used entry
    /// when the capacity bound would be exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or its members disagree on the variable
    /// count (the [`CompiledPolySet`] preconditions).
    pub fn get_or_compile(&mut self, polys: &[&Polynomial]) -> Arc<CompiledPolySet> {
        self.tick += 1;
        let key = family_key(polys);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.hits += 1;
            crate::obs::cache_hits().inc();
            return Arc::clone(&entry.set);
        }
        self.misses += 1;
        crate::obs::cache_misses().inc();
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
                crate::obs::cache_evictions().inc();
            }
        }
        let set = Arc::new(CompiledPolySet::compile_refs(polys));
        self.entries.insert(
            key,
            Entry {
                set: Arc::clone(&set),
                last_used: self.tick,
            },
        );
        set
    }

    /// Current counters.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when no family is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every resident family and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

thread_local! {
    /// The per-thread cache instance backing the solver entry points.
    static QUERY_CACHE: RefCell<CompiledQueryCache> =
        RefCell::new(CompiledQueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY));
}

/// Runs `f` with exclusive access to this thread's [`CompiledQueryCache`].
///
/// This is the instance [`crate::prove_bound`] and
/// [`crate::sound_minimum`] pull compiled families from; tests and benches
/// use it to inspect or reset the counters around a workload.
pub fn with_query_cache<R>(f: impl FnOnce(&mut CompiledQueryCache) -> R) -> R {
    QUERY_CACHE.with(|cell| f(&mut cell.borrow_mut()))
}

/// Counters of this thread's query cache (see [`with_query_cache`]).
pub fn query_cache_stats() -> QueryCacheStats {
    with_query_cache(|cache| cache.stats())
}

/// Clears this thread's query cache and resets its counters.
pub fn reset_query_cache() {
    with_query_cache(CompiledQueryCache::clear)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeff: f64) -> Polynomial {
        let x = Polynomial::variable(0, 1);
        &(&x * &x) + &Polynomial::constant(coeff, 1)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = CompiledQueryCache::new(8);
        let a = poly(1.0);
        let b = poly(2.0);
        let guard = Polynomial::variable(0, 1);
        assert!(cache.is_empty());
        let first = cache.get_or_compile(&[&a, &guard]);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        // Same family: a hit handing back the same compiled set.
        let again = cache.get_or_compile(&[&a, &guard]);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.stats().hits, 1);
        // Different objective, different guard order, sub-family: all misses.
        let _ = cache.get_or_compile(&[&b, &guard]);
        let _ = cache.get_or_compile(&[&guard, &a]);
        let _ = cache.get_or_compile(&[&a]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
        // Coefficients are compared bitwise: a freshly built but identical
        // polynomial still hits.
        let rebuilt = poly(1.0);
        let hit = cache.get_or_compile(&[&rebuilt, &guard]);
        assert!(Arc::ptr_eq(&first, &hit));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn eviction_respects_the_capacity_bound_and_lru_order() {
        let mut cache = CompiledQueryCache::new(2);
        let a = poly(1.0);
        let b = poly(2.0);
        let c = poly(3.0);
        let _ = cache.get_or_compile(&[&a]);
        let _ = cache.get_or_compile(&[&b]);
        // Touch `a` so `b` is the least recently used…
        let _ = cache.get_or_compile(&[&a]);
        // …and inserting `c` evicts `b`, not `a`.
        let _ = cache.get_or_compile(&[&c]);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        let _ = cache.get_or_compile(&[&a]);
        assert_eq!(cache.stats().hits, 2, "a must have survived eviction");
        let _ = cache.get_or_compile(&[&b]);
        assert_eq!(cache.stats().misses, 4, "b must have been evicted");
        // The cache never exceeds its capacity.
        assert!(cache.len() <= 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache = CompiledQueryCache::new(4);
        let a = poly(1.0);
        let _ = cache.get_or_compile(&[&a]);
        let _ = cache.get_or_compile(&[&a]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), QueryCacheStats::default().with_capacity(4));
    }

    impl QueryCacheStats {
        fn with_capacity(mut self, capacity: usize) -> Self {
            self.capacity = capacity;
            self
        }
    }

    #[test]
    fn thread_local_instance_is_shared_within_a_thread() {
        reset_query_cache();
        let a = poly(5.0);
        let first = with_query_cache(|cache| cache.get_or_compile(&[&a]));
        let second = with_query_cache(|cache| cache.get_or_compile(&[&a]));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = query_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        reset_query_cache();
        assert_eq!(query_cache_stats().entries, 0);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = CompiledQueryCache::new(0);
    }
}
