//! Discrete-time Lyapunov equation solving for linear closed-loop systems.
//!
//! When the closed loop `s' = A_cl·s` obtained by deploying a synthesized
//! linear program in an LTI environment is a contraction, a quadratic
//! invariant `E(s) = sᵀ P s − level` exists and can be computed exactly by
//! solving the discrete Lyapunov equation `A_clᵀ P A_cl − P = −Q`.  This is
//! the scalable verification back-end the framework uses for the
//! high-dimensional LTI benchmarks (platoons, oscillator, …), playing the
//! role of a degree-2 SOS certificate in the paper's toolchain.

use vrl_linalg::{spectral_radius, Matrix, SymmetricEigen};

/// Error produced when a discrete Lyapunov equation cannot be solved.
#[derive(Debug, Clone, PartialEq)]
pub enum LyapunovError {
    /// The closed-loop matrix is not a contraction (spectral radius ≥ 1), so
    /// no positive-definite solution exists.
    NotContractive {
        /// Estimated spectral radius.
        spectral_radius: f64,
    },
    /// The iteration failed to converge within its budget.
    NoConvergence,
    /// The input matrices have inconsistent or non-square shapes.
    ShapeMismatch,
}

impl std::fmt::Display for LyapunovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LyapunovError::NotContractive { spectral_radius } => write!(
                f,
                "closed-loop matrix is not a contraction (spectral radius ≈ {spectral_radius:.4})"
            ),
            LyapunovError::NoConvergence => write!(f, "lyapunov iteration did not converge"),
            LyapunovError::ShapeMismatch => write!(f, "matrix shapes are inconsistent"),
        }
    }
}

impl std::error::Error for LyapunovError {}

/// Solves the discrete Lyapunov equation `Aᵀ P A − P = −Q` for symmetric
/// positive-definite `Q`, returning the (symmetric positive-definite) `P`.
///
/// The solution is computed by the convergent series
/// `P = Σ_{k≥0} (Aᵀ)^k Q A^k`, iterated by squaring, which converges exactly
/// when `A` is a contraction.
///
/// # Errors
///
/// Returns [`LyapunovError::NotContractive`] when the spectral radius of `A`
/// is ≥ 1 (estimated by power iteration), [`LyapunovError::ShapeMismatch`]
/// for inconsistent shapes, and [`LyapunovError::NoConvergence`] if the
/// series fails to converge numerically.
pub fn solve_discrete_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix, LyapunovError> {
    if !a.is_square() || !q.is_square() || a.rows() != q.rows() {
        return Err(LyapunovError::ShapeMismatch);
    }
    let radius = spectral_radius(a, 500).map_err(|_| LyapunovError::ShapeMismatch)?;
    if radius >= 1.0 - 1e-9 {
        return Err(LyapunovError::NotContractive {
            spectral_radius: radius,
        });
    }
    // Iterated doubling: P_{k+1} = P_k + M_kᵀ P_k M_k, M_{k+1} = M_k², with
    // P_0 = Q, M_0 = A sums the series in O(log) matrix products.
    let mut p = q.clone();
    let mut m = a.clone();
    for _ in 0..200 {
        let mt_p = m
            .transpose()
            .matmul(&p)
            .map_err(|_| LyapunovError::ShapeMismatch)?;
        let increment = mt_p.matmul(&m).map_err(|_| LyapunovError::ShapeMismatch)?;
        if increment.norm_inf() < 1e-14 * (1.0 + p.norm_inf()) {
            return Ok(p.symmetrized());
        }
        p = &p + &increment;
        m = m.matmul(&m).map_err(|_| LyapunovError::ShapeMismatch)?;
        if !p.as_slice().iter().all(|x| x.is_finite()) {
            return Err(LyapunovError::NoConvergence);
        }
    }
    Err(LyapunovError::NoConvergence)
}

/// Verifies that `P` solves `Aᵀ P A − P ⪯ −margin·I` (i.e. the quadratic form
/// strictly decreases along the closed loop), using the symmetric
/// eigen-decomposition.  Returns the largest eigenvalue of
/// `Aᵀ P A − P + margin·I` (non-positive means verified).
///
/// # Errors
///
/// Returns [`LyapunovError::ShapeMismatch`] for inconsistent shapes.
pub fn decrease_certificate(a: &Matrix, p: &Matrix, margin: f64) -> Result<f64, LyapunovError> {
    if !a.is_square() || !p.is_square() || a.rows() != p.rows() {
        return Err(LyapunovError::ShapeMismatch);
    }
    let at_p = a
        .transpose()
        .matmul(p)
        .map_err(|_| LyapunovError::ShapeMismatch)?;
    let at_p_a = at_p.matmul(a).map_err(|_| LyapunovError::ShapeMismatch)?;
    let mut delta = &at_p_a - p;
    for i in 0..delta.rows() {
        delta[(i, i)] += margin;
    }
    let eig =
        SymmetricEigen::new(&delta.symmetrized()).map_err(|_| LyapunovError::NoConvergence)?;
    Ok(eig.max_eigenvalue())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vrl_linalg::Vector;

    #[test]
    fn solves_scalar_case_exactly() {
        // a = 0.5, q = 1: p = 1 / (1 - 0.25) = 4/3.
        let a = Matrix::from_diagonal(&[0.5]);
        let q = Matrix::identity(1);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        assert!((p[(0, 0)] - 4.0 / 3.0).abs() < 1e-10);
        assert!(decrease_certificate(&a, &p, 0.0).unwrap() <= 1e-9);
    }

    #[test]
    fn solution_satisfies_the_equation() {
        let a = Matrix::from_rows(&[vec![0.9, 0.05], vec![-0.1, 0.85]]);
        let q = Matrix::identity(2);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        // Residual Aᵀ P A − P + Q ≈ 0.
        let residual = &(&a.transpose().matmul(&p).unwrap().matmul(&a).unwrap() - &p) + &q;
        assert!(
            residual.norm_inf() < 1e-8,
            "residual {}",
            residual.norm_inf()
        );
        // P is positive definite.
        let eig = SymmetricEigen::new(&p).unwrap();
        assert!(eig.min_eigenvalue() > 0.0);
        // The quadratic form decreases along trajectories.
        let mut x = Vector::from_slice(&[1.0, -2.0]);
        let mut prev = p.quadratic_form(&x);
        for _ in 0..20 {
            x = a.matvec(&x);
            let next = p.quadratic_form(&x);
            assert!(next <= prev + 1e-12);
            prev = next;
        }
    }

    #[test]
    fn rejects_non_contractive_and_bad_shapes() {
        let unstable = Matrix::from_diagonal(&[1.1, 0.5]);
        assert!(matches!(
            solve_discrete_lyapunov(&unstable, &Matrix::identity(2)),
            Err(LyapunovError::NotContractive { .. })
        ));
        let marginal = Matrix::from_diagonal(&[1.0]);
        assert!(solve_discrete_lyapunov(&marginal, &Matrix::identity(1)).is_err());
        assert!(matches!(
            solve_discrete_lyapunov(&Matrix::identity(2), &Matrix::identity(3)),
            Err(LyapunovError::ShapeMismatch)
        ));
        assert!(matches!(
            decrease_certificate(&Matrix::identity(2), &Matrix::identity(3), 0.0),
            Err(LyapunovError::ShapeMismatch)
        ));
        let err = LyapunovError::NotContractive {
            spectral_radius: 1.2,
        };
        assert!(err.to_string().contains("1.2"));
    }

    #[test]
    fn decrease_certificate_detects_violations() {
        // For an expanding map no P certifies decrease.
        let a = Matrix::from_diagonal(&[1.5]);
        let p = Matrix::identity(1);
        let lambda = decrease_certificate(&a, &p, 0.0).unwrap();
        assert!(lambda > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_lyapunov_solution_is_psd_and_decreasing(entries in proptest::collection::vec(-0.4..0.4f64, 9)) {
            // Scale entries so the matrix is a contraction (row sums < 1).
            let a = Matrix::from_row_major(3, 3, entries).scaled(0.6);
            let q = Matrix::identity(3);
            let p = solve_discrete_lyapunov(&a, &q).unwrap();
            let eig = SymmetricEigen::new(&p).unwrap();
            prop_assert!(eig.min_eigenvalue() > 0.0);
            prop_assert!(decrease_certificate(&a, &p, 0.0).unwrap() <= 1e-7);
        }
    }
}
