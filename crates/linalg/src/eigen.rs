//! Symmetric eigen-decomposition via the cyclic Jacobi method.

use crate::{LinalgError, Matrix, Result, Vector};

/// Eigen-decomposition `A = V Λ Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are returned in ascending order with the eigenvectors stored
/// as the columns of [`SymmetricEigen::vectors`].
///
/// # Examples
///
/// ```
/// use vrl_linalg::{Matrix, SymmetricEigen};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = SymmetricEigen::new(&a).unwrap();
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vector,
    vectors: Matrix,
}

const MAX_SWEEPS: usize = 100;
const OFF_DIAGONAL_TOLERANCE: f64 = 1e-12;

impl SymmetricEigen {
    /// Computes the eigen-decomposition of a symmetric matrix.
    ///
    /// The input is symmetrized (`(A + Aᵀ)/2`) before iterating, so mildly
    /// asymmetric inputs caused by floating-point noise are accepted.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NoConvergence`] if the Jacobi sweeps fail to reduce the
    /// off-diagonal mass (practically unreachable for finite inputs).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut m = a.symmetrized();
        let mut v = Matrix::identity(n);
        if n <= 1 {
            return Ok(SymmetricEigen {
                eigenvalues: Vector::from_fn(n, |i| m[(i, i)]),
                vectors: v,
            });
        }
        let scale = m.norm_inf().max(1.0);
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += m[(p, q)] * m[(p, q)];
                }
            }
            if off.sqrt() < OFF_DIAGONAL_TOLERANCE * scale {
                return Ok(Self::sorted(m, v));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < OFF_DIAGONAL_TOLERANCE * scale * 1e-4 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable computation of tan of the rotation angle.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation to rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        // Final convergence check after the sweep budget.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() < 1e-8 * scale {
            Ok(Self::sorted(m, v))
        } else {
            Err(LinalgError::NoConvergence {
                iterations: MAX_SWEEPS,
            })
        }
    }

    fn sorted(m: Matrix, v: Matrix) -> Self {
        let n = m.rows();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            m[(a, a)]
                .partial_cmp(&m[(b, b)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let eigenvalues = Vector::from_fn(n, |i| m[(order[i], order[i])]);
        let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
        SymmetricEigen {
            eigenvalues,
            vectors,
        }
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Matrix whose columns are the eigenvectors, ordered to match
    /// [`SymmetricEigen::eigenvalues`].
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues[self.eigenvalues.len() - 1]
    }

    /// Returns true when every eigenvalue is `>= -tol`.
    pub fn is_positive_semidefinite(&self, tol: f64) -> bool {
        self.min_eigenvalue() >= -tol
    }

    /// Returns true when every eigenvalue is `<= tol`.
    pub fn is_negative_semidefinite(&self, tol: f64) -> bool {
        self.max_eigenvalue() <= tol
    }

    /// Spectral radius (largest absolute eigenvalue) of the symmetric input.
    pub fn spectral_radius(&self) -> f64 {
        self.min_eigenvalue().abs().max(self.max_eigenvalue().abs())
    }
}

/// Spectral radius of a general (possibly non-symmetric) square matrix,
/// estimated by power iteration on `AᵀA` (which bounds the spectral radius
/// from above by the largest singular value) combined with direct power
/// iteration on `A` for the dominant eigenvalue magnitude.
///
/// The returned value is the power-iteration estimate of `max |λ_i(A)|`; the
/// function is primarily used to decide whether a closed-loop linear system is
/// a contraction.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn spectral_radius(a: &Matrix, iterations: usize) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(0.0);
    }
    let mut v = Vector::from_fn(n, |i| 1.0 / (i as f64 + 1.0));
    // For non-normal matrices (and complex dominant eigenvalues) the
    // per-step growth ratio oscillates, so the estimate is the geometric mean
    // of the growth over all iterations, which converges to max |λ_i|.
    let mut log_growth = 0.0;
    let mut steps = 0usize;
    for _ in 0..iterations.max(1) {
        let w = a.matvec(&v);
        let norm = w.norm();
        if norm < 1e-300 {
            return Ok(0.0);
        }
        log_growth += (norm / v.norm().max(1e-300)).ln();
        steps += 1;
        v = w.scaled(1.0 / norm);
    }
    Ok((log_growth / steps as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 2.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues().as_slice(), &[-1.0, 2.0, 3.0]);
        assert_eq!(e.min_eigenvalue(), -1.0);
        assert_eq!(e.max_eigenvalue(), 3.0);
        assert_eq!(e.spectral_radius(), 3.0);
        assert!(!e.is_positive_semidefinite(1e-9));
        assert!(!e.is_negative_semidefinite(1e-9));
    }

    #[test]
    fn two_by_two_known_spectrum() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 1.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-10);
        assert!(e.is_positive_semidefinite(1e-9));
    }

    #[test]
    fn reconstruction_from_factors() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.vectors();
        let lambda = Matrix::from_diagonal(e.eigenvalues().as_slice());
        let recon = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!((&recon - &a).frobenius_norm() < 1e-8);
        // Eigenvectors are orthonormal.
        let vtv = v.transpose().matmul(v).unwrap();
        assert!((&vtv - &Matrix::identity(3)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn rejects_non_square_and_handles_trivial_sizes() {
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let one = SymmetricEigen::new(&Matrix::from_diagonal(&[7.0])).unwrap();
        assert_eq!(one.eigenvalues().as_slice(), &[7.0]);
        let empty = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(empty.eigenvalues().is_empty());
    }

    #[test]
    fn power_iteration_spectral_radius() {
        let a = Matrix::from_rows(&[vec![0.5, 0.1], vec![0.0, 0.25]]);
        let r = spectral_radius(&a, 200).unwrap();
        assert!((r - 0.5).abs() < 1e-3);
        assert!(matches!(
            spectral_radius(&Matrix::zeros(1, 2), 10),
            Err(LinalgError::NotSquare { .. })
        ));
        assert_eq!(spectral_radius(&Matrix::zeros(3, 3), 10).unwrap(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_eigen_reconstructs_symmetric_input(entries in proptest::collection::vec(-5.0..5.0f64, 16)) {
            let a = Matrix::from_row_major(4, 4, entries).symmetrized();
            let e = SymmetricEigen::new(&a).unwrap();
            let v = e.vectors();
            let lambda = Matrix::from_diagonal(e.eigenvalues().as_slice());
            let recon = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
            prop_assert!((&recon - &a).frobenius_norm() < 1e-6 * (1.0 + a.frobenius_norm()));
        }

        #[test]
        fn prop_trace_equals_eigenvalue_sum(entries in proptest::collection::vec(-5.0..5.0f64, 9)) {
            let a = Matrix::from_row_major(3, 3, entries).symmetrized();
            let e = SymmetricEigen::new(&a).unwrap();
            prop_assert!((a.trace() - e.eigenvalues().sum()).abs() < 1e-7);
        }

        #[test]
        fn prop_gram_matrices_are_psd(entries in proptest::collection::vec(-3.0..3.0f64, 12)) {
            let a = Matrix::from_row_major(4, 3, entries);
            let e = SymmetricEigen::new(&a.gram()).unwrap();
            prop_assert!(e.is_positive_semidefinite(1e-7));
        }
    }
}
