//! Dense row-major matrices over `f64`.

use crate::{LinalgError, Lu, Result, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` entries.
///
/// # Examples
///
/// ```
/// use vrl_linalg::{Matrix, Vector};
///
/// let a = Matrix::identity(2);
/// let v = Vector::from_slice(&[1.0, 2.0]);
/// assert_eq!(a.matvec(&v).as_slice(), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an all-zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a `rows x cols` matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns true when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows a row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies a column into a new [`Vector`].
    pub fn column(&self, j: usize) -> Vector {
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        Vector::from_fn(self.rows, |i| {
            self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum()
        })
    }

    /// Matrix-vector product `A v` written into a caller-provided slice,
    /// allocation-free.  The summation order is identical to
    /// [`Matrix::matvec`], so the two produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
    }

    /// Vector-matrix product `vᵀ A`, returned as a vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.rows, "vecmat dimension mismatch");
        Vector::from_fn(self.cols, |j| {
            (0..self.rows).map(|i| v[i] * self[(i, j)]).sum()
        })
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Entry-wise scaling by `k`.
    pub fn scaled(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += k * other` (entry-wise).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, k: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Returns true when `|self[(i,j)] - self[(j,i)]| <= tol` for all entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrizes the matrix: `(A + Aᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrized(&self) -> Matrix {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self[(i, j)] + self[(j, i)])
        })
    }

    /// Solves `A x = b` using LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square `A`,
    /// [`LinalgError::DimensionMismatch`] when `b` has the wrong length, and
    /// [`LinalgError::Singular`] when `A` is (numerically) singular.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        Lu::new(self)?.solve(b)
    }

    /// Computes the inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        Lu::new(self)?.inverse()
    }

    /// Determinant via LU factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn determinant(&self) -> Result<f64> {
        match Lu::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x` has the wrong length.
    pub fn quadratic_form(&self, x: &Vector) -> f64 {
        assert!(self.is_square(), "quadratic form requires a square matrix");
        x.dot(&self.matvec(x))
    }

    /// Returns `Aᵀ A`.
    pub fn gram(&self) -> Matrix {
        self.transpose()
            .matmul(self)
            .expect("gram dimensions always agree")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix product dimension mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, k: f64) -> Matrix {
        self.scaled(k)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 4.0]);
        assert!(m.is_square());
        assert_eq!(Matrix::identity(3).trace(), 3.0);
        assert_eq!(
            Matrix::from_diagonal(&[2.0, 5.0]).determinant().unwrap(),
            10.0
        );
        let f = Matrix::from_row_major(2, 3, vec![0.0; 6]);
        assert_eq!(f.shape(), (2, 3));
        assert!(!f.is_square());
    }

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.matvec(&v).as_slice(), &[3.0, 7.0]);
        let mut out = [0.0; 2];
        a.matvec_into(v.as_slice(), &mut out);
        assert_eq!(out, [3.0, 7.0]);
        assert_eq!(a.vecmat(&v).as_slice(), &[4.0, 6.0]);
        let b = Matrix::identity(2);
        assert_eq!(a.matmul(&b).unwrap(), a);
        let c = &a * &a;
        assert_eq!(c[(0, 0)], 7.0);
        assert_eq!(c[(1, 1)], 22.0);
        assert!(matches!(
            a.matmul(&Matrix::zeros(3, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_symmetry_and_norms() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        assert!(!a.is_symmetric(1e-12));
        assert!(a.symmetrized().is_symmetric(1e-12));
        assert!(approx(a.frobenius_norm(), 30.0_f64.sqrt()));
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.gram(), at.matmul(&a).unwrap());
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!(a.matvec(&x).distance(&b) < 1e-10);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).frobenius_norm() < 1e-10);
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            singular.solve(&Vector::zeros(2)),
            Err(LinalgError::Singular)
        ));
        assert_eq!(singular.determinant().unwrap(), 0.0);
    }

    #[test]
    fn quadratic_form_and_helpers() {
        let q = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]);
        let x = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(q.quadratic_form(&x), 14.0);
        let mut m = Matrix::zeros(2, 2);
        m.axpy(2.0, &Matrix::identity(2));
        assert_eq!(m.trace(), 4.0);
        assert_eq!(m.map(|x| x + 1.0)[(0, 1)], 1.0);
        assert_eq!((&m * 0.5)[(0, 0)], 1.0);
        let s = format!("{}", Matrix::identity(1));
        assert!(s.contains("1.000000"));
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_panics_on_mismatch() {
        let _ = Matrix::identity(2).matvec(&Vector::zeros(3));
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(entries in proptest::collection::vec(-1e3..1e3f64, 9)) {
            let m = Matrix::from_row_major(3, 3, entries);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_identity_is_neutral(entries in proptest::collection::vec(-1e3..1e3f64, 9)) {
            let m = Matrix::from_row_major(3, 3, entries);
            let i = Matrix::identity(3);
            prop_assert!((&m.matmul(&i).unwrap() - &m).frobenius_norm() < 1e-9);
            prop_assert!((&i.matmul(&m).unwrap() - &m).frobenius_norm() < 1e-9);
        }

        #[test]
        fn prop_matmul_associativity(a in proptest::collection::vec(-10.0..10.0f64, 4),
                                      b in proptest::collection::vec(-10.0..10.0f64, 4),
                                      c in proptest::collection::vec(-10.0..10.0f64, 4)) {
            let ma = Matrix::from_row_major(2, 2, a);
            let mb = Matrix::from_row_major(2, 2, b);
            let mc = Matrix::from_row_major(2, 2, c);
            let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
            let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
            prop_assert!((&left - &right).frobenius_norm() < 1e-6);
        }

        #[test]
        fn prop_solve_recovers_solution(entries in proptest::collection::vec(-5.0..5.0f64, 9),
                                         xs in proptest::collection::vec(-5.0..5.0f64, 3)) {
            // Make the system well conditioned by diagonal dominance.
            let mut m = Matrix::from_row_major(3, 3, entries);
            for i in 0..3 { m[(i, i)] += 20.0; }
            let x = Vector::from_slice(&xs);
            let b = m.matvec(&x);
            let solved = m.solve(&b).unwrap();
            prop_assert!(solved.distance(&x) < 1e-6);
        }
    }
}
