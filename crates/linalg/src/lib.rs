//! Dense linear algebra substrate for the verifiable-RL framework.
//!
//! This crate provides the small amount of numerical linear algebra the rest
//! of the framework needs: dense [`Vector`]s and [`Matrix`]es, LU and Cholesky
//! factorizations, linear system solves, and a symmetric eigen-decomposition
//! (cyclic Jacobi).  It is deliberately minimal and dependency-free so the
//! framework remains self-contained and auditable.
//!
//! # Examples
//!
//! ```
//! use vrl_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b).unwrap();
//! let r = &a.matvec(&x) - &b;
//! assert!(r.norm() < 1e-10);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod decomp;
mod eigen;
mod error;
mod matrix;
mod vector;

pub use decomp::{is_positive_definite, Cholesky, Lu};
pub use eigen::{spectral_radius, SymmetricEigen};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use vector::Vector;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        let x = a.solve(&b).unwrap();
        let r = &a.matvec(&x) - &b;
        assert!(r.norm() < 1e-10);
    }
}
