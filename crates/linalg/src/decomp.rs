//! LU and Cholesky factorizations.

use crate::{LinalgError, Matrix, Result, Vector};

/// LU factorization with partial pivoting, `P A = L U`.
///
/// # Examples
///
/// ```
/// use vrl_linalg::{Lu, Matrix, Vector};
///
/// let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]);
/// let lu = Lu::new(&a).unwrap();
/// let x = lu.solve(&Vector::from_slice(&[2.0, 2.0])).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implied) and U (on/above diagonal).
    factors: Matrix,
    /// Row permutation: row `i` of the factorization corresponds to row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation, used for determinants.
    perm_sign: f64,
}

const PIVOT_TOLERANCE: f64 = 1e-12;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot underflows the tolerance.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: find the row with the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for i in (k + 1)..n {
                if f[(i, k)].abs() > pivot_val {
                    pivot_val = f[(i, k)].abs();
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOLERANCE {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = f[(k, j)];
                    f[(k, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = f[(k, k)];
            for i in (k + 1)..n {
                let mult = f[(i, k)] / pivot;
                f[(i, k)] = mult;
                for j in (k + 1)..n {
                    let delta = mult * f[(k, j)];
                    f[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            factors: f,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution with permuted right-hand side.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.factors[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.factors[(i, j)] * x[j];
            }
            x[i] = sum / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse of the factorized matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from per-column solves (which cannot occur for a
    /// successfully constructed factorization of correct dimension).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::from_fn(n, |i| if i == j { 1.0 } else { 0.0 });
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// # Examples
///
/// ```
/// use vrl_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let chol = Cholesky::new(&a).unwrap();
/// assert!(chol.determinant() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
    /// non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Solve L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.lower[(i, j)] * y[j];
            }
            y[i] = sum / self.lower[(i, i)];
        }
        // Solve Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lower[(j, i)] * x[j];
            }
            x[i] = sum / self.lower[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            let d = self.lower[(i, i)];
            det *= d * d;
        }
        det
    }

    /// Log-determinant, numerically safer than `determinant().ln()` for large matrices.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.lower[(i, i)].ln()).sum()
    }
}

/// Returns true when a symmetric matrix is positive definite (via Cholesky).
pub fn is_positive_definite(a: &Matrix) -> bool {
    Cholesky::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lu_solves_with_pivoting() {
        // Leading zero forces a pivot swap.
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0, 2.0],
            vec![1.0, 2.0, 0.0],
            vec![2.0, 0.0, 1.0],
        ]);
        let x_true = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.matvec(&x_true);
        let lu = Lu::new(&a).unwrap();
        assert_eq!(lu.dim(), 3);
        let x = lu.solve(&b).unwrap();
        assert!(x.distance(&x_true) < 1e-10);
    }

    #[test]
    fn lu_detects_singular_and_non_square() {
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(Lu::new(&singular), Err(LinalgError::Singular)));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&rect), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn lu_determinant_sign_tracks_permutation() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((Lu::new(&a).unwrap().determinant() + 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]);
        assert!((Lu::new(&b).unwrap().determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_rejects_bad_rhs() {
        let lu = Lu::new(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cholesky_factorizes_spd() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.0],
            vec![2.0, 5.0, 1.0],
            vec![0.0, 1.0, 3.0],
        ]);
        let c = Cholesky::new(&a).unwrap();
        let l = c.lower();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!((&recon - &a).frobenius_norm() < 1e-10);
        assert!((c.determinant() - a.determinant().unwrap()).abs() < 1e-8);
        assert!((c.log_determinant() - a.determinant().unwrap().ln()).abs() < 1e-8);
        let b = Vector::from_slice(&[1.0, 0.0, -1.0]);
        let x = c.solve(&b).unwrap();
        assert!(a.matvec(&x).distance(&b) < 1e-10);
        assert!(matches!(
            c.solve(&Vector::zeros(4)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_indefinite_and_non_square() {
        let indefinite = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&indefinite),
            Err(LinalgError::NotPositiveDefinite)
        ));
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(1, 2)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(is_positive_definite(&Matrix::identity(3)));
        assert!(!is_positive_definite(&indefinite));
    }

    proptest! {
        #[test]
        fn prop_lu_roundtrip_diag_dominant(entries in proptest::collection::vec(-3.0..3.0f64, 16),
                                            xs in proptest::collection::vec(-10.0..10.0f64, 4)) {
            let mut a = Matrix::from_row_major(4, 4, entries);
            for i in 0..4 { a[(i, i)] += 15.0; }
            let x = Vector::from_slice(&xs);
            let b = a.matvec(&x);
            let solved = Lu::new(&a).unwrap().solve(&b).unwrap();
            prop_assert!(solved.distance(&x) < 1e-6);
        }

        #[test]
        fn prop_cholesky_of_gram_matrix(entries in proptest::collection::vec(-2.0..2.0f64, 12)) {
            // AᵀA + εI is symmetric positive definite for any A.
            let a = Matrix::from_row_major(4, 3, entries);
            let mut g = a.gram();
            for i in 0..3 { g[(i, i)] += 0.1; }
            let c = Cholesky::new(&g).unwrap();
            let recon = c.lower().matmul(&c.lower().transpose()).unwrap();
            prop_assert!((&recon - &g).frobenius_norm() < 1e-8);
            prop_assert!(c.determinant() > 0.0);
        }
    }
}
