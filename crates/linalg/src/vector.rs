//! Dense vectors over `f64`.

use crate::LinalgError;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, heap-allocated vector of `f64` entries.
///
/// `Vector` is the numeric workhorse shared by the neural-network, RL and
/// solver crates.  It is intentionally a thin wrapper over `Vec<f64>` with
/// the arithmetic the framework needs.
///
/// # Examples
///
/// ```
/// use vrl_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    ///
    /// ```
    /// # use vrl_linalg::Vector;
    /// let z = Vector::zeros(3);
    /// assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by taking ownership of a `Vec<f64>`.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Vector { data: values }
    }

    /// Creates a vector of length `n` whose `i`-th entry is `f(i)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the entries as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Iterates mutably over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths ({} vs {})",
            self.len(),
            other.len()
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Checked dot product, returning an error on mismatched lengths.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn try_dot(&self, other: &Vector) -> crate::Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self.dot(other))
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Maximum absolute entry (L∞ norm); zero for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the entries; zero for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Entry-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard requires equal lengths");
        Vector::from_fn(self.len(), |i| self.data[i] * other.data[i])
    }

    /// Returns a copy scaled by `k`.
    pub fn scaled(&self, k: f64) -> Vector {
        Vector::from_fn(self.len(), |i| self.data[i] * k)
    }

    /// In-place `self += k * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn axpy(&mut self, k: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Returns a copy with each entry clamped to `[lo, hi]`.
    pub fn clamped(&self, lo: f64, hi: f64) -> Vector {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Returns true if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Euclidean distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn distance(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "distance requires equal lengths");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector { data: v }
    }
}

impl From<Vector> for Vec<f64> {
    fn from(v: Vector) -> Self {
        v.data
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Vector> for &Vector {
            type Output = Vector;
            fn $method(self, rhs: &Vector) -> Vector {
                assert_eq!(self.len(), rhs.len(), "vector length mismatch");
                Vector::from_fn(self.len(), |i| self.data[i] $op rhs.data[i])
            }
        }
        impl $trait<Vector> for Vector {
            type Output = Vector;
            fn $method(self, rhs: Vector) -> Vector {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, k: f64) -> Vector {
        self.scaled(k)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, k: f64) -> Vector {
        self.scaled(k)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_produce_expected_contents() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0; 3]);
        assert_eq!(Vector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
        assert!(Vector::zeros(0).is_empty());
        assert_eq!(Vector::default().len(), 0);
    }

    #[test]
    fn dot_norm_and_distance() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.norm_squared(), 14.0);
        assert_eq!(a.norm_inf(), 3.0);
        assert!((a.distance(&b) - 27.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn try_dot_reports_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.try_dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert_eq!(a.try_dot(&Vector::zeros(2)).unwrap(), 0.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
    }

    #[test]
    fn map_clamp_hadamard_and_stats() {
        let a = Vector::from_slice(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamped(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[4.0, 0.25, 9.0]);
        assert_eq!(a.sum(), 1.5);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        let b = Vector::from_slice(&[1.0, 2.0, -1.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[-2.0, 1.0, -3.0]);
        assert!(a.is_finite());
        assert!(!Vector::from_slice(&[f64::NAN]).is_finite());
    }

    #[test]
    fn conversions_and_iteration() {
        let v: Vector = vec![1.0, 2.0].into();
        let back: Vec<f64> = v.clone().into();
        assert_eq!(back, vec![1.0, 2.0]);
        let collected: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(collected.as_slice(), &[0.0, 1.0, 2.0]);
        let sum: f64 = (&collected).into_iter().sum();
        assert_eq!(sum, 3.0);
        let mut ext = Vector::zeros(1);
        ext.extend([5.0]);
        assert_eq!(ext.as_slice(), &[0.0, 5.0]);
        assert_eq!(format!("{}", Vector::from_slice(&[1.0])), "[1.000000]");
        assert_eq!(v.as_ref().len(), 2);
    }

    #[test]
    #[should_panic(expected = "dot product requires equal lengths")]
    fn dot_panics_on_mismatch() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    proptest! {
        #[test]
        fn prop_dot_is_commutative(a in proptest::collection::vec(-1e3..1e3f64, 1..16)) {
            let n = a.len();
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            let va = Vector::from_slice(&a);
            let vb = Vector::from_slice(&b[..n]);
            prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-6);
        }

        #[test]
        fn prop_norm_is_nonnegative_and_scales(a in proptest::collection::vec(-1e3..1e3f64, 1..16), k in -10.0..10.0f64) {
            let v = Vector::from_slice(&a);
            prop_assert!(v.norm() >= 0.0);
            let scaled = v.scaled(k);
            prop_assert!((scaled.norm() - k.abs() * v.norm()).abs() < 1e-6 * (1.0 + v.norm()));
        }

        #[test]
        fn prop_triangle_inequality(a in proptest::collection::vec(-1e3..1e3f64, 1..12),
                                     b in proptest::collection::vec(-1e3..1e3f64, 1..12)) {
            let n = a.len().min(b.len());
            let va = Vector::from_slice(&a[..n]);
            let vb = Vector::from_slice(&b[..n]);
            prop_assert!((&va + &vb).norm() <= va.norm() + vb.norm() + 1e-9);
        }

        #[test]
        fn prop_add_sub_roundtrip(a in proptest::collection::vec(-1e6..1e6f64, 1..12),
                                   b in proptest::collection::vec(-1e6..1e6f64, 1..12)) {
            let n = a.len().min(b.len());
            let va = Vector::from_slice(&a[..n]);
            let vb = Vector::from_slice(&b[..n]);
            let rt = &(&va + &vb) - &vb;
            prop_assert!(rt.distance(&va) < 1e-6);
        }
    }
}
