//! Error types for linear-algebra operations.

use std::fmt;

/// Error produced by fallible linear-algebra operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A factorization failed because the matrix is singular (or numerically so).
    Singular,
    /// Cholesky factorization failed because the matrix is not positive definite.
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square but is {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} sweeps")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
        assert!(LinalgError::NotSquare { rows: 1, cols: 2 }
            .to_string()
            .contains("1x2"));
        assert!(LinalgError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(LinalgError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
