//! Networked shield serving, end to end: an HTTP front-end over a sharded
//! fleet, driven by an in-process client.
//!
//! 1. Start a `ShardRouter` (3 shield-server shards, rendezvous placement)
//!    behind the std-only HTTP/1.1 front-end on a loopback port.
//! 2. `PUT` checksummed shield artifacts for two deployments over the wire.
//! 3. `POST` single and batched decide requests (all traffic rides the
//!    lane-batched `decide_batch` kernels server-side).
//! 4. `GET` per-deployment telemetry and `/healthz`.
//! 5. Grow the fleet by one shard and watch the consistent hash rehydrate
//!    only the deployments whose placement moved.
//!
//! Run with: `cargo run -p vrl-runtime --example http_server`
//!
//! While it runs you can also poke the same server with curl, e.g.
//! `curl -s http://127.0.0.1:<port>/healthz` — the README's "Serving over
//! HTTP" section shows a full transcript.

use std::sync::Arc;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::{fixtures, Placement, ShardRouter};

fn main() {
    // A sharded backend: three in-process shield servers, deployments
    // consistent-hashed across them by name.
    let router = Arc::new(ShardRouter::new(3, 1, Placement::Rendezvous));
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds");
    let addr = frontend.local_addr();
    println!("serving on http://{addr}");

    let mut client = MiniClient::connect(addr).expect("client connects");

    // Upload two deployments over the wire (checksummed artifact bytes).
    for (name, benchmark, gains, radii) in [
        (
            "pendulum",
            "pendulum",
            &fixtures::PENDULUM_GAINS[..],
            &fixtures::PENDULUM_RADII[..],
        ),
        (
            "cartpole",
            "cartpole",
            &fixtures::CARTPOLE_GAINS[..],
            &fixtures::CARTPOLE_RADII[..],
        ),
    ] {
        let env = benchmark_by_name(benchmark)
            .expect("Table 1 benchmark")
            .into_env();
        let artifact =
            fixtures::demo_artifact(&env, gains, radii, &[64, 64], 7).expect("dimensions agree");
        let response = client
            .request(
                "PUT",
                &format!("/v1/deployments/{name}"),
                &artifact.to_bytes(),
            )
            .expect("PUT succeeds");
        println!(
            "PUT /v1/deployments/{name} -> {} {} (shard {})",
            response.status,
            response.text(),
            router.shard_for(name)
        );
    }

    // One state, then a batch — identical decisions to the in-process API.
    let single = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            br#"{"state": [0.05, -0.1]}"#,
        )
        .expect("decide succeeds");
    println!(
        "POST decide (single) -> {} {}",
        single.status,
        single.text()
    );

    let batch_body = format!(
        "{{\"states\": [{}]}}",
        (0..100)
            .map(|i| format!(
                "[{:.3}, {:.3}]",
                0.3 * ((i % 7) as f64 / 7.0 - 0.5),
                0.2 * ((i % 5) as f64 / 5.0 - 0.5)
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let batch = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            batch_body.as_bytes(),
        )
        .expect("batched decide succeeds");
    println!(
        "POST decide (100-state batch) -> {} ({} bytes of decisions)",
        batch.status,
        batch.body.len()
    );

    // A malformed request gets a structured 4xx, not a dropped connection.
    let bad = client
        .request("POST", "/v1/deployments/pendulum/decide", b"{oops")
        .expect("error responses still arrive");
    println!("POST decide (malformed) -> {} {}", bad.status, bad.text());

    // Telemetry and health over the wire.
    let telemetry = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .expect("telemetry succeeds");
    println!("GET telemetry -> {} {}", telemetry.status, telemetry.text());
    let health = client.request("GET", "/healthz", b"").expect("healthz");
    println!("GET /healthz -> {} {}", health.status, health.text());

    // Grow the fleet: the consistent hash moves (in expectation) 1/4 of the
    // deployments — each rehydrated on the new shard from artifact bytes.
    let moved = router.add_shard();
    println!(
        "added shard 3; rehydrated {:?} on it (everything else stayed put)",
        moved
    );
    let after = client
        .request(
            "POST",
            "/v1/deployments/cartpole/decide",
            br#"{"state": [0.0, 0.1, 0.0, -0.1]}"#,
        )
        .expect("decide still succeeds after resharding");
    println!("POST decide after resharding -> {}", after.status);

    let fleet = router.aggregate_telemetry();
    println!(
        "fleet telemetry: {} deployments, {} requests, {} decisions across {} shards \
         (a moved deployment restarts its counters on its new shard)",
        fleet.deployments,
        fleet.requests,
        fleet.decisions,
        fleet.per_shard.len()
    );

    frontend.shutdown();
    println!("front-end shut down cleanly");
}
