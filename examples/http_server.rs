//! Networked shield serving, end to end: an HTTP front-end over a sharded
//! fleet, driven by an in-process client.
//!
//! 1. Start a `ShardRouter` (3 shield-server shards, rendezvous placement)
//!    behind the std-only HTTP/1.1 front-end on a loopback port.
//! 2. `PUT` checksummed shield artifacts for two deployments over the wire.
//! 3. `POST` single and batched decide requests — over the JSON codec and
//!    again over the negotiated binary frame codec
//!    (`Content-Type: application/x-vrl-frame`), asserting the decisions
//!    bit-identical (all traffic rides the lane-batched `decide_batch`
//!    kernels server-side).
//! 4. `GET` per-deployment telemetry and `/healthz`.
//! 5. Grow the fleet by one shard and watch the consistent hash rehydrate
//!    only the deployments whose placement moved.
//! 6. Scrape `GET /metrics` (the process-wide Prometheus catalog spanning
//!    synthesis, verification, and serving) and export the request's trace
//!    spans as a Chrome trace.
//!
//! Run with: `cargo run -p vrl-runtime --example http_server`
//!
//! While it runs you can also poke the same server with curl, e.g.
//! `curl -s http://127.0.0.1:<port>/healthz` — the README's "Serving over
//! HTTP" section shows a full transcript.

use std::sync::Arc;
use vrl::shield::TableConfig;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::{fixtures, frame, wire, Placement, ShardRouter};

fn main() {
    // A sharded backend: three in-process shield servers, deployments
    // consistent-hashed across them by name.
    let router = Arc::new(ShardRouter::new(3, 1, Placement::Rendezvous));
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds");
    let addr = frontend.local_addr();
    println!("serving on http://{addr}");

    let mut client = MiniClient::connect(addr).expect("client connects");

    // Upload two deployments over the wire (checksummed artifact bytes).
    for (name, benchmark, gains, radii) in [
        (
            "pendulum",
            "pendulum",
            &fixtures::PENDULUM_GAINS[..],
            &fixtures::PENDULUM_RADII[..],
        ),
        (
            "cartpole",
            "cartpole",
            &fixtures::CARTPOLE_GAINS[..],
            &fixtures::CARTPOLE_RADII[..],
        ),
    ] {
        let env = benchmark_by_name(benchmark)
            .expect("Table 1 benchmark")
            .into_env();
        let mut artifact =
            fixtures::demo_artifact(&env, gains, radii, &[64, 64], 7).expect("dimensions agree");
        if name == "pendulum" {
            // The pendulum deployment ships with a precomputed decision
            // table: the config rides inside the artifact bytes and each
            // shard rebuilds (and re-certifies) the table on deploy, so
            // most decide traffic below resolves in O(1).
            artifact = artifact
                .with_table_config(TableConfig::uniform(64))
                .expect("the pendulum safe box grids cleanly");
        }
        let response = client
            .request(
                "PUT",
                &format!("/v1/deployments/{name}"),
                &artifact.to_bytes(),
            )
            .expect("PUT succeeds");
        println!(
            "PUT /v1/deployments/{name} -> {} {} (shard {})",
            response.status,
            response.text(),
            router.shard_for(name)
        );
    }

    // One state, then a batch — identical decisions to the in-process API.
    let single = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            br#"{"state": [0.05, -0.1]}"#,
        )
        .expect("decide succeeds");
    println!(
        "POST decide (single) -> {} {}",
        single.status,
        single.text()
    );

    let states: Vec<Vec<f64>> = (0..100)
        .map(|i| {
            vec![
                0.3 * ((i % 7) as f64 / 7.0 - 0.5),
                0.2 * ((i % 5) as f64 / 5.0 - 0.5),
            ]
        })
        .collect();
    let batch_body = wire::decide_batch_request(&states);
    let batch = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            batch_body.as_bytes(),
        )
        .expect("batched decide succeeds");
    println!(
        "POST decide (100-state batch) -> {} ({} bytes of decisions)",
        batch.status,
        batch.body.len()
    );

    // The same batch over the binary frame codec: the request Content-Type
    // negotiates the codec, the 200 response mirrors it (errors stay JSON
    // on both paths), and the decisions must be bit-identical — the frame
    // carries raw f64 bits, the JSON codec renders shortest-round-trip.
    let frame_body = frame::encode_decide_request(&states, true);
    let framed = client
        .request_with_headers(
            "POST",
            "/v1/deployments/pendulum/decide",
            &frame_body,
            &[("content-type", frame::CONTENT_TYPE_FRAME)],
        )
        .expect("binary decide succeeds");
    let json_decisions = wire::decode_decide_response(&batch.body).expect("JSON decodes");
    let frame_decisions = frame::decode_decide_response(&framed.body).expect("frame decodes");
    let identical = json_decisions.len() == frame_decisions.len()
        && json_decisions.iter().zip(&frame_decisions).all(|(a, b)| {
            a.intervened == b.intervened
                && a.action.len() == b.action.len()
                && a.action
                    .iter()
                    .zip(&b.action)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        });
    println!(
        "POST decide (binary frame: {} bytes in, {} bytes out, response content-type {:?}) \
         -> {}; decisions bit-identical to JSON: {identical}",
        frame_body.len(),
        framed.body.len(),
        framed.header("content-type").unwrap_or("<missing>"),
        framed.status,
    );
    assert!(identical, "the two wire codecs must agree bit-for-bit");

    // A malformed request gets a structured 4xx, not a dropped connection.
    let bad = client
        .request("POST", "/v1/deployments/pendulum/decide", b"{oops")
        .expect("error responses still arrive");
    println!("POST decide (malformed) -> {} {}", bad.status, bad.text());

    // Telemetry and health over the wire.
    let telemetry = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .expect("telemetry succeeds");
    println!("GET telemetry -> {} {}", telemetry.status, telemetry.text());
    let health = client.request("GET", "/healthz", b"").expect("healthz");
    println!("GET /healthz -> {} {}", health.status, health.text());

    // Every response carries an x-request-id — the client's own id when it
    // sends one, a generated id otherwise — and the same id tags the
    // request's trace span and any error envelope.
    let tagged = client
        .request_with_headers(
            "GET",
            "/healthz",
            b"",
            &[("x-request-id", "example-trace-1")],
        )
        .expect("healthz");
    println!(
        "GET /healthz with x-request-id -> echoed {:?}",
        tagged.header("x-request-id").unwrap_or("<missing>")
    );

    // Grow the fleet: the consistent hash moves (in expectation) 1/4 of the
    // deployments — each rehydrated on the new shard from artifact bytes.
    let moved = router.add_shard();
    println!(
        "added shard 3; rehydrated {:?} on it (everything else stayed put)",
        moved
    );
    let after = client
        .request(
            "POST",
            "/v1/deployments/cartpole/decide",
            br#"{"state": [0.0, 0.1, 0.0, -0.1]}"#,
        )
        .expect("decide still succeeds after resharding");
    println!("POST decide after resharding -> {}", after.status);

    let fleet = router.aggregate_telemetry();
    println!(
        "fleet telemetry: {} deployments, {} requests, {} decisions across {} shards \
         (a moved deployment restarts its counters on its new shard)",
        fleet.deployments,
        fleet.requests,
        fleet.decisions,
        fleet.per_shard.len()
    );

    // Scrape the process-wide metrics registry: every instrumented layer
    // (synthesis, B&B verification, serving, HTTP) publishes here, and the
    // front-end registered the full catalog at bind time, so series exist
    // (at zero) even before their subsystem runs.
    let scrape = client.request("GET", "/metrics", b"").expect("metrics");
    let exposition = scrape.text().into_owned();
    let families = exposition
        .lines()
        .filter(|line| line.starts_with("# TYPE "))
        .count();
    println!(
        "GET /metrics -> {} ({families} series families, {} bytes of text exposition)",
        scrape.status,
        exposition.len()
    );
    for series in [
        "vrl_http_requests_total",
        "vrl_http_decide_requests_total{codec=\"json\"}",
        "vrl_http_decide_requests_total{codec=\"binary\"}",
        "vrl_runtime_decisions_total",
        "vrl_router_rehydrations_total",
        "vrl_shield_decide_table_hits_total",
        "vrl_shield_decide_table_cells",
    ] {
        let line = exposition
            .lines()
            .find(|line| line.starts_with(series))
            .expect("series is registered");
        println!("  {line}");
    }

    // The spans recorded while serving (each tagged with its request id)
    // export as a Chrome trace — paste into Perfetto / chrome://tracing.
    let spans = vrl_obs::drain_spans();
    let tagged_spans = spans
        .iter()
        .filter(|s| s.request_id.as_deref() == Some("example-trace-1"))
        .count();
    println!(
        "drained {} trace spans ({tagged_spans} tagged example-trace-1); chrome trace is {} bytes",
        spans.len(),
        vrl_obs::spans_to_chrome_trace(&spans).len()
    );

    frontend.shutdown();
    println!("front-end shut down cleanly");
}
