//! The Sec. 2.2 scenario: a controller trained for the ordinary inverted
//! pendulum is deployed on a Segway-style platform with much stricter safety
//! bounds (30 degrees).  Instead of retraining the network, we only
//! re-synthesize the shield for the new environment.
//!
//! Run with: `cargo run --release --example environment_change`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{evaluate_shielded_system, synthesize_shield, CegisConfig};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::pendulum::{pendulum_original, pendulum_restricted};

fn main() {
    let original = pendulum_original().into_env();
    let restricted = pendulum_restricted().into_env();
    // The "trained network": adequate in the original environment but unaware
    // of the stricter deployment constraints.
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-13.0 * s[0] - 6.0 * s[1]]);
    let config = CegisConfig {
        verification: VerificationConfig::with_degree(4),
        ..CegisConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(3);

    let (original_shield, _) =
        synthesize_shield(&original, &oracle, &config, &mut rng).expect("original environment");
    let (new_shield, report) =
        synthesize_shield(&restricted, &oracle, &config, &mut rng).expect("restricted environment");
    println!(
        "re-synthesized the shield for the restricted environment in {:.1}s ({} piece(s)) — no retraining needed",
        report.synthesis_time.as_secs_f64(),
        report.pieces
    );

    let eval = evaluate_shielded_system(&restricted, &oracle, &new_shield, 50, 2000, &mut rng);
    println!(
        "restricted environment over {} episodes: {} unshielded violations prevented, {} interventions out of {} decisions ({:.5}% of decisions)",
        eval.episodes,
        eval.neural_failures,
        eval.interventions,
        eval.decisions,
        100.0 * eval.intervention_rate()
    );
    assert_eq!(eval.shielded_failures, 0);
    // The original shield's invariant is *not* trusted in the new context:
    // the new one is strictly tighter.
    let probe = [0.45, 0.0];
    println!(
        "state {probe:?}: original shield covers it: {}, restricted shield covers it: {}",
        original_shield.covers(&probe),
        new_shield.covers(&probe)
    );
}
