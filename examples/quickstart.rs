//! Quickstart: synthesize a verified shield for the inverted pendulum
//! (the paper's running example) and inspect the synthesized program.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{evaluate_shielded_system, synthesize_shield, CegisConfig};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::pendulum::pendulum_original;

fn main() {
    let env = pendulum_original().into_env();
    // The neural oracle: here a hand-written controller stands in for a
    // trained network (see `shield_deployment.rs` for actual RL training).
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-14.0 * s[0] - 7.0 * s[1]]);

    let config = CegisConfig {
        verification: VerificationConfig::with_degree(4),
        ..CegisConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let (shield, report) = synthesize_shield(&env, &oracle, &config, &mut rng)
        .expect("the pendulum oracle is shieldable");

    println!(
        "Synthesized {} verified piece(s) in {:.1}s:\n",
        report.pieces,
        report.synthesis_time.as_secs_f64()
    );
    println!("{}", shield.to_program().pretty(&env.variable_names()));
    for (i, piece) in shield.pieces().iter().enumerate() {
        println!(
            "invariant {}: {}\n",
            i + 1,
            piece.invariant().pretty(&env.variable_names())
        );
    }

    let eval = evaluate_shielded_system(&env, &oracle, &shield, 20, 2000, &mut rng);
    println!(
        "over {} episodes: {} unshielded violations, {} shielded violations, {} interventions, {:.2}% overhead",
        eval.episodes, eval.neural_failures, eval.shielded_failures, eval.interventions, eval.overhead_percent
    );
    assert_eq!(eval.shielded_failures, 0);
}
