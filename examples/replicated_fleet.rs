//! A replicated fleet surviving the death of a shard, end to end:
//!
//! 1. Start two shard processes (in-process [`ShieldServer`]s behind their
//!    own HTTP front-ends on loopback ports) — stand-ins for shard
//!    machines.
//! 2. Build a [`FleetRouter`] over both addresses (replicas = 2, background
//!    health prober on) and put an HTTP front-end in front of the fleet.
//! 3. `PUT` the pendulum shield artifact once; the fleet writes it to
//!    **both** replicas and records the canonical bytes for rehydration.
//! 4. `POST` a 100-state decide batch and keep the decisions as the
//!    baseline.
//! 5. **Kill the primary replica** for the deployment, then send the same
//!    batch again: the fleet fails over to the backup and the decisions
//!    come back bit-identical (every replica runs the same verified
//!    shield).
//! 6. Show telemetry surviving the failover (the ledger keeps the dead
//!    primary's counters) and the failover / breaker / probe counters on
//!    `GET /metrics`.
//!
//! Run with: `cargo run -p vrl-runtime --example replicated_fleet`

use std::sync::Arc;
use std::time::Duration;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::wire::decode_decide_response;
use vrl_runtime::{fixtures, FleetConfig, FleetRouter, ShieldServer};

fn start_shard() -> HttpFrontend {
    HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::new(ShieldServer::with_workers(2)),
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds")
}

fn main() {
    // Two shard machines (here: two servers in this process, each behind
    // its own HTTP front-end — the fleet only ever sees their addresses).
    let mut shards: Vec<Option<HttpFrontend>> = vec![Some(start_shard()), Some(start_shard())];
    let addrs: Vec<_> = shards
        .iter()
        .map(|s| s.as_ref().expect("just started").local_addr())
        .collect();
    for (index, addr) in addrs.iter().enumerate() {
        println!("shard {index} listening on http://{addr}");
    }

    // The fleet: every deployment replicated on both shards, a background
    // prober flipping liveness and rehydrating restarted shards.
    let fleet = Arc::new(FleetRouter::new(
        &addrs,
        FleetConfig {
            probe_interval: Some(Duration::from_millis(200)),
            ..FleetConfig::default()
        },
    ));
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&fleet) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("loopback bind succeeds");
    println!("fleet front-end on http://{}", frontend.local_addr());

    let mut client = MiniClient::connect(frontend.local_addr()).expect("client connects");

    // One PUT deploys to every replica.
    let env = benchmark_by_name("pendulum")
        .expect("Table 1 benchmark")
        .into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[64, 64],
        7,
    )
    .expect("dimensions agree");
    let put = client
        .request("PUT", "/v1/deployments/pendulum", &artifact.to_bytes())
        .expect("PUT succeeds");
    let replicas = fleet.replicas_for("pendulum");
    println!(
        "PUT /v1/deployments/pendulum -> {} (replicas on shards {replicas:?})",
        put.status
    );

    // The 100-state baseline, served by the primary replica.
    let batch_body = format!(
        "{{\"states\": [{}]}}",
        (0..100)
            .map(|i| format!(
                "[{:.3}, {:.3}]",
                0.3 * ((i % 7) as f64 / 7.0 - 0.5),
                0.2 * ((i % 5) as f64 / 5.0 - 0.5)
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let before = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            batch_body.as_bytes(),
        )
        .expect("batched decide succeeds");
    println!(
        "POST decide (100-state batch) -> {} ({} bytes of decisions)",
        before.status,
        before.body.len()
    );
    // Fetch telemetry once so the fleet's ledger holds the primary's
    // counters before it dies.
    let telemetry_before = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .expect("telemetry succeeds");
    println!("GET telemetry (before kill) -> {}", telemetry_before.text());

    // Kill the primary replica's shard. The next request fails over; the
    // prober marks the shard down moments later.
    let primary = replicas[0];
    shards[primary]
        .take()
        .expect("primary still running")
        .shutdown();
    println!("killed shard {primary} (the primary replica for pendulum)");

    let after = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            batch_body.as_bytes(),
        )
        .expect("decide still succeeds with one replica down");
    let decisions_before = decode_decide_response(&before.body).expect("baseline decodes");
    let decisions_after = decode_decide_response(&after.body).expect("failover batch decodes");
    let identical = decisions_before.len() == decisions_after.len()
        && decisions_before.iter().zip(&decisions_after).all(|(a, b)| {
            a.intervened == b.intervened
                && a.action.len() == b.action.len()
                && a.action
                    .iter()
                    .zip(&b.action)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        });
    println!(
        "POST decide after kill -> {} ; decisions bit-identical across failover: {identical}",
        after.status
    );
    assert!(identical, "failover must not change decisions");

    // Give the prober a cycle to notice the corpse, then show the fleet's
    // view of the world.
    std::thread::sleep(Duration::from_millis(600));
    println!("shard liveness after probe: {:?}", fleet.shard_liveness());

    // Telemetry survives the failover: the dead primary's counters come
    // from the ledger, the backup's from the live shard.
    let telemetry_after = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .expect("telemetry still succeeds");
    println!("GET telemetry (after kill) -> {}", telemetry_after.text());

    // The fault-tolerance counters, straight off the Prometheus exposition.
    let scrape = client.request("GET", "/metrics", b"").expect("metrics");
    let exposition = scrape.text().into_owned();
    for series in [
        "vrl_fleet_failovers_total",
        "vrl_fleet_probes_total",
        "vrl_remote_retries_total",
        "vrl_remote_breaker_transitions_total",
    ] {
        for line in exposition
            .lines()
            .filter(|line| line.starts_with(series) && !line.starts_with('#'))
        {
            println!("  {line}");
        }
    }

    frontend.shutdown();
    if let Some(backup) = shards.into_iter().flatten().next() {
        backup.shutdown();
    }
    println!("fleet survived losing a shard; front-end shut down cleanly");
}
