//! Policy interpretation: distill a black-box neural policy into a readable
//! deterministic program (Algorithm 1) and inspect how closely it tracks the
//! oracle — the "interpretable machine learning" use case of Sec. 2.2.
//!
//! Run with: `cargo run --release --example interpret_policy`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::Policy;
use vrl::pipeline::{train_oracle, OracleTrainer, PipelineConfig};
use vrl::rl::ArsConfig;
use vrl::synth::{oracle_distance, synthesize_program, DistillConfig, ProgramSketch};
use vrl_benchmarks::pendulum::pendulum_original;

fn main() {
    let env = pendulum_original().into_env();
    // Train a small neural oracle.
    let config = PipelineConfig {
        hidden_layers: vec![32, 32],
        trainer: OracleTrainer::Ars(ArsConfig {
            iterations: 80,
            ..ArsConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let (oracle, elapsed) = train_oracle(&env, &config);
    println!(
        "trained a {}-parameter neural policy in {:.1}s",
        oracle.network().num_parameters(),
        elapsed.as_secs_f64()
    );

    // Distill it into the affine sketch of Eq. (4).
    let sketch = ProgramSketch::affine(env.state_dim(), env.action_dim());
    let mut rng = SmallRng::seed_from_u64(5);
    let synthesized = synthesize_program(
        &env,
        &oracle,
        &sketch,
        env.init(),
        None,
        &DistillConfig::default(),
        &mut rng,
    );
    let program = synthesized.to_program();
    println!(
        "\nsynthesized interpretation:\n{}",
        program.pretty(&env.variable_names())
    );
    println!(
        "objective (oracle proximity, higher is closer): {:.3}",
        synthesized.report.final_objective
    );

    // Compare the two policies on a few states.
    println!(
        "\n{:>10} {:>10} {:>14} {:>14}",
        "eta", "omega", "oracle", "program"
    );
    for s in [[0.2, 0.0], [0.1, -0.3], [-0.25, 0.2], [0.0, 0.35]] {
        println!(
            "{:>10.2} {:>10.2} {:>14.3} {:>14.3}",
            s[0],
            s[1],
            oracle.action(&s)[0],
            program.action(&s)[0]
        );
    }
    let mut rng2 = SmallRng::seed_from_u64(6);
    let d = oracle_distance(&env, &oracle, &program, env.init(), 5, 500, 1e4, &mut rng2);
    println!("\ntrajectory distance to the oracle over 5 rollouts: {d:.2}");
}
