//! Full pipeline on the quadcopter benchmark: train a neural policy with RL,
//! synthesize a verified shield for it, and compare the shielded and
//! unshielded deployments.
//!
//! Run with: `cargo run --release --example shield_deployment`

use vrl::pipeline::{run_pipeline, OracleTrainer, PipelineConfig};
use vrl::rl::ArsConfig;
use vrl::shield::CegisConfig;
use vrl::verify::VerificationConfig;
use vrl_benchmarks::quadcopter::quadcopter_env;

fn main() {
    let env = quadcopter_env();
    let config = PipelineConfig {
        hidden_layers: vec![64, 64],
        trainer: OracleTrainer::Ars(ArsConfig::default()),
        cegis: CegisConfig {
            verification: VerificationConfig::with_degree(2),
            ..CegisConfig::default()
        },
        evaluation_episodes: 50,
        evaluation_steps: 2000,
        seed: 11,
    };
    let outcome = run_pipeline(&env, &config).expect("the quadcopter is shieldable");
    let eval = &outcome.evaluation;
    println!(
        "neural oracle trained in {:.1}s ({} parameters)",
        outcome.training_time.as_secs_f64(),
        outcome.oracle.network().num_parameters()
    );
    println!(
        "shield: {} piece(s), synthesized in {:.1}s",
        outcome.shield.num_pieces(),
        outcome.cegis_report.synthesis_time.as_secs_f64()
    );
    println!(
        "{}",
        outcome.shield.to_program().pretty(&env.variable_names())
    );
    println!(
        "evaluation over {} episodes: {} unshielded failures, {} shielded failures, {} interventions, {:.2}% overhead",
        eval.episodes, eval.neural_failures, eval.shielded_failures, eval.interventions, eval.overhead_percent
    );
    assert_eq!(eval.shielded_failures, 0);
}
