//! Example 4.3 / Fig. 6: counterexample-guided inductive synthesis on the
//! Duffing oscillator.  The CEGIS loop covers the initial region with one or
//! more verified linear policies guarded by quartic inductive invariants.
//!
//! Run with: `cargo run --release --example duffing_cegis`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::duffing::duffing_env;

fn main() {
    let env = duffing_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![0.6 * s[0] - 2.2 * s[1]]);
    let config = CegisConfig {
        verification: VerificationConfig::with_degree(4),
        max_pieces: 6,
        ..CegisConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let (shield, report) = synthesize_shield(&env, &oracle, &config, &mut rng)
        .expect("the Duffing oscillator of Example 4.3 is shieldable");
    println!(
        "CEGIS covered S0 with {} piece(s) after {} attempts:\n",
        report.pieces, report.attempts
    );
    println!("{}", shield.to_program().pretty(&env.variable_names()));
    // The two initial states discussed in Example 4.3.
    for s0 in [[-0.46, -0.36], [2.249, 2.0]] {
        assert!(
            shield.covers(&s0),
            "{s0:?} must be covered by the final shield"
        );
        println!("initial state {s0:?} is covered");
    }
}
