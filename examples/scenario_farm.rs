//! Scenario-farm transcript: generate the procedural environment families,
//! push one cheap family through the multi-threaded CEGIS scheduler,
//! mass-deploy the checkpointed artifacts into a `ShardRouter`, serve a
//! decision from every shard, and scrape the live farm counters.
//!
//! Run with: `cargo run --release --example scenario_farm`

use std::collections::BTreeMap;
use vrl::dynamics::Policy;
use vrl::shield::{CegisConfig, TableConfig};
use vrl_farm::{generate, run_farm, FarmConfig, JobConfig, Scenario};
use vrl_runtime::{Placement, ShardRouter};

fn main() {
    vrl_farm::install_metrics();

    // Every scenario regenerates bit-for-bit from its ID alone, so the
    // full catalog is cheap to enumerate.
    let scenarios = generate(&FarmConfig::default());
    let mut families: BTreeMap<&str, usize> = BTreeMap::new();
    for scenario in &scenarios {
        *families.entry(scenario.family()).or_default() += 1;
    }
    println!(
        "farm: {} scenarios across {} families",
        scenarios.len(),
        families.len()
    );
    for (family, count) in &families {
        println!("  {family}: {count}");
    }
    assert!(scenarios.len() >= 200, "acceptance floor: >= 200 scenarios");

    // Synthesize shields for the quadcopter drag sweep — the cheapest
    // family, so the example stays fast in debug CI too.
    let jobs: Vec<Scenario> = scenarios
        .iter()
        .filter(|s| s.family() == "quadcopter")
        .cloned()
        .collect();
    let mut cegis = CegisConfig::smoke_test();
    cegis.distill.iterations = 30;
    cegis.distill.trajectories = 2;
    cegis.distill.horizon = 150;
    let config = JobConfig {
        cegis,
        oracle_hidden: vec![8],
        table: Some(TableConfig::uniform(8)),
        timeout: None,
    };
    let report = run_farm(&jobs, &config, 4);
    println!(
        "scheduler: {} jobs on {} threads in {:.2}s ({:.1} jobs/sec), {} synthesized",
        report.records.len(),
        report.threads,
        report.elapsed.as_secs_f64(),
        report.jobs_per_sec(),
        report.synthesized()
    );

    // Mass-deploy every checkpointed artifact and serve one decision per
    // deployment, bit-identical to deciding against the artifact locally.
    let router = ShardRouter::new(3, 1, Placement::Jump);
    let deployed = report.deploy_to_router(&router).expect("deploy");
    println!("deployed {deployed} artifacts across 3 shards");
    let mut served = 0usize;
    for record in &report.records {
        let Some(artifact) = &record.artifact else {
            continue;
        };
        let state = vec![0.05; artifact.shield().env().state_dim()];
        let proposed = artifact.oracle().action(&state);
        let decision = router.decide(&record.scenario_id, &state).expect("serve");
        assert_eq!(decision, artifact.shield().decide(&state, &proposed));
        served += 1;
    }
    println!("served {served} decisions, all bit-identical to local decide");
    assert_eq!(served, deployed);

    // Live counters, the same series a serving process exposes at
    // GET /metrics.
    let text = vrl_obs::registry().render_prometheus();
    for line in text.lines() {
        if line.starts_with("vrl_farm_") {
            println!("{line}");
        }
    }
    assert!(text.contains("vrl_farm_jobs_total{outcome=\"synthesized\"}"));
    println!(
        "farm complete: {} jobs recorded",
        vrl_farm::jobs_completed()
    );
}
