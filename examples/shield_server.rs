//! Save / load / serve: the full deployment story in one example.
//!
//! 1. Synthesize a verified shield with the end-to-end pipeline.
//! 2. Persist it (with its neural oracle) as a `ShieldArtifact` file.
//! 3. Load it into a `ShieldServer` and serve single and batched decisions.
//! 4. Change the environment (tighter safety bound) and hot swap a freshly
//!    re-synthesized shield in — no retraining, zero downtime.
//!
//! Run with: `cargo run -p vrl-runtime --example shield_server`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::pipeline::{run_pipeline, PipelineConfig};
use vrl::poly::Polynomial;
use vrl::verify::VerificationConfig;
use vrl_runtime::{ShieldArtifact, ShieldServer};

fn main() {
    // ẋ = a, start in |x| ≤ 0.3, stay in |x| ≤ 1.
    let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
    let env = EnvironmentContext::new(
        "scalar",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.3]),
        SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
    )
    .with_action_bounds(vec![-2.0], vec![2.0]);

    let mut config = PipelineConfig::smoke_test();
    config.cegis.verification = VerificationConfig::with_degree(2);

    println!("synthesizing a verified shield …");
    let outcome = run_pipeline(&env, &config).expect("the scalar system is shieldable");

    // Persist the deployment bundle.
    let path = std::env::temp_dir().join("scalar.shield");
    let artifact = ShieldArtifact::new(outcome.shield, outcome.oracle)
        .unwrap()
        .with_label("example-v1");
    artifact.save(&path).expect("artifact saves");
    println!(
        "saved {} ({} bytes)",
        artifact.metadata(),
        artifact.to_bytes().len()
    );

    // Load it into a server and serve.
    let server = ShieldServer::new();
    server
        .deploy(
            "scalar",
            ShieldArtifact::load(&path).expect("artifact loads"),
        )
        .unwrap();

    let decision = server.decide("scalar", &[0.25]).unwrap();
    println!(
        "decide(scalar, [0.25]) -> action {:?} (intervened: {})",
        decision.action, decision.intervened
    );

    let mut rng = SmallRng::seed_from_u64(7);
    let batch: Vec<Vec<f64>> = (0..1000).map(|_| env.sample_initial(&mut rng)).collect();
    let decisions = server.decide_batch("scalar", &batch).unwrap();
    let interventions = decisions.iter().filter(|d| d.intervened).count();
    println!(
        "decide_batch over {} states -> {} interventions across {} workers",
        decisions.len(),
        interventions,
        server.workers()
    );

    // The Table 3 move: the environment tightens, the oracle stays.
    let restricted = env
        .clone()
        .with_safety(SafetySpec::inside(BoxRegion::symmetric(&[0.6])))
        .with_name("scalar-restricted");
    println!("environment changed: re-synthesizing and hot swapping …");
    let (generation, report) = server
        .resynthesize_and_redeploy("scalar", &restricted, &config)
        .expect("the restricted system is shieldable");
    println!(
        "now serving generation {generation} ({} pieces, synthesized in {:.2?})",
        report.pieces, report.synthesis_time
    );

    println!("{}", server.telemetry("scalar").unwrap());
    let _ = std::fs::remove_file(&path);
}
